#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/math_util.h"

namespace plp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Result<PairedTTestResult> PairedTTest(std::span<const double> a,
                                      std::span<const double> b) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("paired t-test requires equal sample sizes");
  }
  if (a.size() < 2) {
    return InvalidArgumentError("paired t-test requires at least two pairs");
  }
  RunningStats diffs;
  for (size_t i = 0; i < a.size(); ++i) diffs.Add(a[i] - b[i]);

  PairedTTestResult result;
  result.mean_difference = diffs.mean();
  result.degrees_of_freedom = static_cast<double>(diffs.count() - 1);
  const double se =
      diffs.stddev() / std::sqrt(static_cast<double>(diffs.count()));
  if (se == 0.0) {
    result.t_statistic =
        result.mean_difference == 0.0
            ? 0.0
            : std::copysign(std::numeric_limits<double>::infinity(),
                            result.mean_difference);
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = result.mean_difference / se;
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

Result<KsTestResult> KolmogorovSmirnovTest(
    std::span<const double> sample,
    const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    return InvalidArgumentError("KS test requires a non-empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    if (f < 0.0 || f > 1.0) {
      return InvalidArgumentError("null CDF returned a value outside [0, 1]");
    }
    // Empirical CDF steps from i/n to (i+1)/n at the i-th order statistic;
    // the supremum is attained at one of the two sides of a step.
    d = std::max(d, std::max(f - static_cast<double>(i) / n,
                             static_cast<double>(i + 1) / n - f));
  }

  KsTestResult result;
  result.statistic = d;
  result.n = static_cast<int64_t>(sorted.size());
  const double sqrt_n = std::sqrt(n);
  result.p_value =
      KolmogorovComplementaryCdf((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

Result<ChiSquareResult> ChiSquareGoodnessOfFit(
    std::span<const double> observed, std::span<const double> expected,
    int degrees_of_freedom_reduction) {
  if (observed.size() != expected.size()) {
    return InvalidArgumentError(
        "chi-square test requires matching cell counts");
  }
  if (observed.size() < 2) {
    return InvalidArgumentError("chi-square test requires at least two cells");
  }
  ChiSquareResult result;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      return InvalidArgumentError("expected cell counts must be positive");
    }
    const double diff = observed[i] - expected[i];
    result.statistic += diff * diff / expected[i];
  }
  result.degrees_of_freedom = static_cast<double>(
      static_cast<int64_t>(observed.size()) - 1 - degrees_of_freedom_reduction);
  if (result.degrees_of_freedom <= 0.0) {
    return InvalidArgumentError("chi-square test has no degrees of freedom");
  }
  result.p_value = RegularizedUpperIncompleteGamma(
      result.degrees_of_freedom / 2.0, result.statistic / 2.0);
  return result;
}

Result<ZTestResult> ZTestMean(std::span<const double> sample,
                              double hypothesized_mean, double known_stddev) {
  if (sample.empty()) {
    return InvalidArgumentError("z-test requires a non-empty sample");
  }
  if (known_stddev <= 0.0) {
    return InvalidArgumentError("z-test requires a positive known stddev");
  }
  RunningStats stats;
  for (double x : sample) stats.Add(x);
  ZTestResult result;
  result.sample_mean = stats.mean();
  result.z_statistic = (stats.mean() - hypothesized_mean) *
                       std::sqrt(static_cast<double>(stats.count())) /
                       known_stddev;
  result.p_value = 2.0 * NormalCdf(-std::fabs(result.z_statistic));
  return result;
}

}  // namespace plp
