#include "common/stats.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace plp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Result<PairedTTestResult> PairedTTest(std::span<const double> a,
                                      std::span<const double> b) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("paired t-test requires equal sample sizes");
  }
  if (a.size() < 2) {
    return InvalidArgumentError("paired t-test requires at least two pairs");
  }
  RunningStats diffs;
  for (size_t i = 0; i < a.size(); ++i) diffs.Add(a[i] - b[i]);

  PairedTTestResult result;
  result.mean_difference = diffs.mean();
  result.degrees_of_freedom = static_cast<double>(diffs.count() - 1);
  const double se =
      diffs.stddev() / std::sqrt(static_cast<double>(diffs.count()));
  if (se == 0.0) {
    result.t_statistic =
        result.mean_difference == 0.0
            ? 0.0
            : std::copysign(std::numeric_limits<double>::infinity(),
                            result.mean_difference);
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = result.mean_difference / se;
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace plp
