#ifndef PLP_COMMON_SERIALIZE_H_
#define PLP_COMMON_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace plp {

/// Little-endian binary serialization primitives shared by the checkpoint
/// subsystem and the stateful components it snapshots (ledger, optimizers,
/// RNG). A ByteWriter appends to an in-memory buffer; the finished buffer
/// is committed to disk in one shot (see common/atomic_file.h), never
/// streamed — durability lives at the file layer, layout lives here.
class ByteWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void I32(int32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void I64(int64_t v) { AppendLe(&v, sizeof(v)); }
  void F64(double v) { AppendLe(&v, sizeof(v)); }

  /// Raw doubles, no length prefix (caller knows the count from shape).
  void DoubleSpan(std::span<const double> values);

  /// u64 length + raw doubles.
  void DoubleVector(std::span<const double> values);

  /// u64 length + bytes. Used both for strings and for nested opaque
  /// state blobs (a component serializes into its own ByteWriter and the
  /// parent embeds the result), which keeps layers decoupled: the
  /// checkpoint format does not know the ledger's or an optimizer's
  /// internal layout.
  void LengthPrefixedBytes(std::string_view bytes);

  const std::string& str() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void AppendLe(const void* data, size_t bytes);

  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer. Every accessor fails
/// with InvalidArgument on truncation instead of reading past the end —
/// defense in depth behind the envelope checksum.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<int32_t> I32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();

  /// Fills `values` with raw doubles (no length prefix).
  Status ReadDoubleSpan(std::span<double> values);

  /// Reads a u64-length-prefixed double vector; rejects lengths above
  /// `max_len` before allocating.
  Result<std::vector<double>> ReadDoubleVector(uint64_t max_len);

  /// Reads a u64-length-prefixed byte string; rejects lengths above
  /// `max_len` before allocating.
  Result<std::string> ReadLengthPrefixedBytes(uint64_t max_len);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Take(void* out, size_t bytes);

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-64/XZ (ECMA-182 polynomial, reflected) of `data`. Torn or
/// bit-flipped checkpoint payloads are rejected by this checksum before
/// any field is parsed.
uint64_t Crc64(std::string_view data);

/// Streaming form of Crc64 for data that never lives in one buffer (the
/// on-disk corpus writer checksums shards as it appends). Start from
/// Crc64Init(), fold in chunks with Crc64Update, finish with
/// Crc64Finish; Crc64Finish(Crc64Update(Crc64Init(), data)) == Crc64(data).
uint64_t Crc64Init();
uint64_t Crc64Update(uint64_t state, std::string_view chunk);
uint64_t Crc64Finish(uint64_t state);

}  // namespace plp

#endif  // PLP_COMMON_SERIALIZE_H_
