#ifndef PLP_COMMON_STATS_H_
#define PLP_COMMON_STATS_H_

#include <cstdint>
#include <functional>
#include <span>

#include "common/status.h"

namespace plp {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of a paired two-sided Student t-test.
struct PairedTTestResult {
  double mean_difference = 0.0;  ///< mean(a_i - b_i)
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< two-sided
};

/// Paired t-test between matched samples `a` and `b` (e.g. per-seed accuracy
/// of two training methods). The paper reports PLP > DP-SGD with p < 0.01
/// under this test. Fails if sizes differ or fewer than two pairs are given;
/// a zero-variance difference yields p = 0 (unless the mean difference is
/// also zero, which yields p = 1).
Result<PairedTTestResult> PairedTTest(std::span<const double> a,
                                      std::span<const double> b);

/// Result of a one-sample Kolmogorov–Smirnov goodness-of-fit test.
struct KsTestResult {
  double statistic = 0.0;  ///< D_n = sup_x |F_n(x) − F(x)|
  double p_value = 1.0;    ///< asymptotic, via the Kolmogorov distribution
  int64_t n = 0;
};

/// One-sample KS test of `sample` against the continuous null CDF `cdf`.
/// The p-value uses the Stephens small-sample correction
/// t = (√n + 0.12 + 0.11/√n)·D, accurate to a few percent for n >= 20.
/// Fails on an empty sample. The sample is copied and sorted internally.
Result<KsTestResult> KolmogorovSmirnovTest(
    std::span<const double> sample,
    const std::function<double(double)>& cdf);

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< upper tail
};

/// Pearson chi-square test of observed cell counts against expected counts.
/// `degrees_of_freedom_reduction` is subtracted from cells−1 (use it when
/// expected counts were fitted from the data). Fails on size mismatch,
/// fewer than two cells, a non-positive expected count, or df <= 0.
/// Cells with expected count < 5 make the asymptotic p-value unreliable;
/// the caller is responsible for binning.
Result<ChiSquareResult> ChiSquareGoodnessOfFit(
    std::span<const double> observed, std::span<const double> expected,
    int degrees_of_freedom_reduction = 0);

/// Result of a two-sided z-test on an empirical mean.
struct ZTestResult {
  double sample_mean = 0.0;
  double z_statistic = 0.0;
  double p_value = 1.0;  ///< two-sided
};

/// Two-sided z-test that `sample` has mean `hypothesized_mean`, with the
/// population standard deviation `known_stddev` known a priori (e.g. the
/// calibrated stddev of an injected Gaussian). Fails on an empty sample or
/// a non-positive stddev.
Result<ZTestResult> ZTestMean(std::span<const double> sample,
                              double hypothesized_mean, double known_stddev);

}  // namespace plp

#endif  // PLP_COMMON_STATS_H_
