#ifndef PLP_COMMON_STATS_H_
#define PLP_COMMON_STATS_H_

#include <cstdint>
#include <span>

#include "common/status.h"

namespace plp {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of a paired two-sided Student t-test.
struct PairedTTestResult {
  double mean_difference = 0.0;  ///< mean(a_i - b_i)
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< two-sided
};

/// Paired t-test between matched samples `a` and `b` (e.g. per-seed accuracy
/// of two training methods). The paper reports PLP > DP-SGD with p < 0.01
/// under this test. Fails if sizes differ or fewer than two pairs are given;
/// a zero-variance difference yields p = 0 (unless the mean difference is
/// also zero, which yields p = 1).
Result<PairedTTestResult> PairedTTest(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace plp

#endif  // PLP_COMMON_STATS_H_
