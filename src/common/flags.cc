#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"

namespace plp {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      parser.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (key.empty()) return InvalidArgumentError("empty flag name: " + arg);
      parser.values_[key] = body.substr(eq + 1);
      continue;
    }
    // `--key value` or bare boolean `--key`.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      parser.values_[body] = argv[i + 1];
      ++i;
    } else {
      parser.values_[body] = "true";
    }
  }
  return parser;
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  PLP_CHECK(end != nullptr && *end == '\0');
  return v;
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PLP_CHECK(end != nullptr && *end == '\0');
  return v;
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  PLP_CHECK(false);
  return def;
}

std::vector<double> FlagParser::GetDoubleList(
    const std::string& key, const std::vector<double>& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<double> out;
  for (const std::string& part : SplitCommas(it->second)) {
    char* end = nullptr;
    out.push_back(std::strtod(part.c_str(), &end));
    PLP_CHECK(end != nullptr && *end == '\0');
  }
  return out;
}

std::vector<int64_t> FlagParser::GetIntList(
    const std::string& key, const std::vector<int64_t>& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<int64_t> out;
  for (const std::string& part : SplitCommas(it->second)) {
    char* end = nullptr;
    out.push_back(std::strtoll(part.c_str(), &end, 10));
    PLP_CHECK(end != nullptr && *end == '\0');
  }
  return out;
}

}  // namespace plp
