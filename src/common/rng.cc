#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace plp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro requires a nonzero state; splitmix cannot produce four zero
  // outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
  s.spare_gaussian = spare_gaussian_;
  s.has_spare_gaussian = has_spare_gaussian_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  PLP_CHECK((s.state[0] | s.state[1] | s.state[2] | s.state[3]) != 0);
  for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
  spare_gaussian_ = s.spare_gaussian;
  has_spare_gaussian_ = s.has_spare_gaussian;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  PLP_CHECK_LT(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  PLP_CHECK_GT(n, 0u);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PLP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  PLP_CHECK(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller. Uniform() can return 0, which log() rejects; resample.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  PLP_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

void Rng::AddGaussianNoise(std::span<double> values, double stddev) {
  PLP_CHECK_GE(stddev, 0.0);
  if (stddev == 0.0) return;
  for (double& v : values) v += stddev * Gaussian();
}

int64_t Rng::Poisson(double mean) {
  PLP_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until product < exp(-mean).
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean draws used by the synthetic generator.
  const double x = Gaussian(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int64_t>(std::llround(x));
}

double Rng::Exponential(double rate) {
  PLP_CHECK_GT(rate, 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / rate;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PLP_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected time, O(k) space.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(UniformInt(j + 1));
    bool seen = false;
    for (size_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  PLP_CHECK_GT(n, 0u);
  PLP_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  // First k with cdf_[k] >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(size_t k) const {
  PLP_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PLP_CHECK(!weights.empty());
  const size_t n = weights.size();
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  PLP_CHECK_GT(total, 0.0);
  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    PLP_CHECK_GE(weights[i], 0.0);
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.UniformInt(prob_.size()));
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace plp
