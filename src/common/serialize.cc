#include "common/serialize.h"

#include <array>
#include <bit>
#include <cstring>

namespace plp {

static_assert(std::endian::native == std::endian::little,
              "serialized formats are little-endian; big-endian hosts need "
              "byte swaps here");

void ByteWriter::AppendLe(const void* data, size_t bytes) {
  buffer_.append(static_cast<const char*>(data), bytes);
}

void ByteWriter::DoubleSpan(std::span<const double> values) {
  AppendLe(values.data(), values.size() * sizeof(double));
}

void ByteWriter::DoubleVector(std::span<const double> values) {
  U64(static_cast<uint64_t>(values.size()));
  DoubleSpan(values);
}

void ByteWriter::LengthPrefixedBytes(std::string_view bytes) {
  U64(static_cast<uint64_t>(bytes.size()));
  buffer_.append(bytes.data(), bytes.size());
}

Status ByteReader::Take(void* out, size_t bytes) {
  if (remaining() < bytes) {
    return InvalidArgumentError("serialized buffer truncated");
  }
  std::memcpy(out, data_.data() + pos_, bytes);
  pos_ += bytes;
  return Status::Ok();
}

Result<uint8_t> ByteReader::U8() {
  uint8_t v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<uint32_t> ByteReader::U32() {
  uint32_t v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<int32_t> ByteReader::I32() {
  int32_t v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<uint64_t> ByteReader::U64() {
  uint64_t v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<int64_t> ByteReader::I64() {
  int64_t v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<double> ByteReader::F64() {
  double v = 0;
  PLP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Status ByteReader::ReadDoubleSpan(std::span<double> values) {
  return Take(values.data(), values.size() * sizeof(double));
}

Result<std::vector<double>> ByteReader::ReadDoubleVector(uint64_t max_len) {
  PLP_ASSIGN_OR_RETURN(const uint64_t len, U64());
  if (len > max_len) {
    return InvalidArgumentError("serialized vector length exceeds limit");
  }
  if (remaining() < len * sizeof(double)) {
    return InvalidArgumentError("serialized buffer truncated");
  }
  std::vector<double> values(static_cast<size_t>(len));
  PLP_RETURN_IF_ERROR(ReadDoubleSpan(values));
  return values;
}

Result<std::string> ByteReader::ReadLengthPrefixedBytes(uint64_t max_len) {
  PLP_ASSIGN_OR_RETURN(const uint64_t len, U64());
  if (len > max_len) {
    return InvalidArgumentError("serialized blob length exceeds limit");
  }
  if (remaining() < len) {
    return InvalidArgumentError("serialized buffer truncated");
  }
  std::string bytes(data_.substr(pos_, static_cast<size_t>(len)));
  pos_ += static_cast<size_t>(len);
  return bytes;
}

namespace {

/// Reflected CRC-64/XZ table (polynomial 0x42F0E1EBA9EA3693, reflected as
/// 0xC96C5795D7870F42), built once at first use.
const std::array<uint64_t, 256>& Crc64Table() {
  static const std::array<uint64_t, 256> table = [] {
    std::array<uint64_t, 256> t{};
    constexpr uint64_t kPoly = 0xC96C5795D7870F42ULL;
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[static_cast<size_t>(i)] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint64_t Crc64(std::string_view data) {
  return Crc64Finish(Crc64Update(Crc64Init(), data));
}

uint64_t Crc64Init() { return ~uint64_t{0}; }

uint64_t Crc64Update(uint64_t state, std::string_view chunk) {
  const auto& table = Crc64Table();
  for (const char c : chunk) {
    state = table[(state ^ static_cast<uint8_t>(c)) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint64_t Crc64Finish(uint64_t state) { return ~state; }

}  // namespace plp
