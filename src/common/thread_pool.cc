#include "common/thread_pool.h"

#include "common/check.h"

namespace plp {
namespace {

/// -1 outside pool workers; workers overwrite it with their index at
/// startup. A worker belongs to exactly one pool for its whole lifetime,
/// so a plain thread_local is unambiguous.
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  PLP_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    PLP_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::ScheduleAll(std::span<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    PLP_CHECK(!shutting_down_);
    for (auto& task : tasks) {
      PLP_CHECK(task != nullptr);
      queue_.push_back(std::move(task));
    }
    in_flight_ += tasks.size();
  }
  if (tasks.size() == 1) {
    work_available_.notify_one();
  } else {
    work_available_.notify_all();
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Schedule([&fn, i] { fn(i); });
  }
  Wait();
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace plp
