#ifndef PLP_COMMON_ALIGNED_H_
#define PLP_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace plp {

/// Minimal std::allocator replacement that hands out `Alignment`-byte
/// aligned blocks (C++17 aligned operator new). The default of 64 bytes is
/// one x86 cache line and the widest vector register in common use
/// (AVX-512); rows allocated through it can be loaded with aligned vector
/// instructions and never straddle a line they don't have to.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "Alignment weaker than alignof(T)");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose data() is always 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

/// True when `p` is aligned to `alignment` bytes.
inline bool IsAligned(const void* p, std::size_t alignment = 64) {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

/// Doubles per stored row for a logical row of `dim` doubles: dim rounded
/// up to the next multiple of 8 (8 doubles = 64 bytes), so that in an
/// aligned arena every row starts on its own cache line. The padding tail
/// of each row is kept at exactly 0.0 by everything that allocates with
/// this stride.
inline constexpr std::size_t PaddedRowStride(std::size_t dim) {
  return (dim + 7) & ~static_cast<std::size_t>(7);
}

}  // namespace plp

#endif  // PLP_COMMON_ALIGNED_H_
