#include "common/fault_injection.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace plp {
namespace {

// Armed-fault spec, guarded by a mutex: the slow path only runs while a
// fault is armed (tests and the crashtest child), never in production.
struct ArmedFault {
  std::string point;
  FaultMode mode = FaultMode::kKill;
  int64_t trigger_hit = 1;
  int64_t delay_millis = 0;
  int64_t hits = 0;
};

std::mutex& FaultMutex() {
  static std::mutex m;
  return m;
}

ArmedFault& Fault() {
  static ArmedFault fault;
  return fault;
}

}  // namespace

std::atomic<bool> FaultInjection::armed_{false};

void FaultInjection::Arm(const std::string& point, FaultMode mode,
                         int64_t trigger_hit, int64_t delay_millis) {
  PLP_CHECK(!point.empty());
  PLP_CHECK_GE(trigger_hit, 1);
  std::lock_guard<std::mutex> lock(FaultMutex());
  Fault() = ArmedFault{point, mode, trigger_hit, delay_millis, 0};
  armed_.store(true, std::memory_order_release);
}

void FaultInjection::Disarm() {
  std::lock_guard<std::mutex> lock(FaultMutex());
  armed_.store(false, std::memory_order_release);
  Fault() = ArmedFault{};
}

void FaultInjection::ArmFromEnv() {
  const char* env = std::getenv("PLP_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);

  int64_t trigger_hit = 1;
  if (const size_t at = spec.find('@'); at != std::string::npos) {
    trigger_hit = std::strtoll(spec.c_str() + at + 1, nullptr, 10);
    PLP_CHECK_GE(trigger_hit, 1);
    spec.resize(at);
  }
  FaultMode mode = FaultMode::kKill;
  int64_t delay_millis = 0;
  if (const size_t colon = spec.find(':'); colon != std::string::npos) {
    const std::string mode_str = spec.substr(colon + 1);
    spec.resize(colon);
    if (mode_str == "kill") {
      mode = FaultMode::kKill;
    } else if (mode_str == "fail") {
      mode = FaultMode::kFail;
    } else if (mode_str.rfind("delay", 0) == 0) {
      mode = FaultMode::kDelay;
      delay_millis = std::strtoll(mode_str.c_str() + 5, nullptr, 10);
      PLP_CHECK_GE(delay_millis, 0);
    } else {
      PLP_CHECK(false && "PLP_FAULT mode must be kill, fail, or delay<ms>");
    }
  }
  PLP_CHECK(!spec.empty());
  Arm(spec, mode, trigger_hit, delay_millis);
}

Status FaultInjection::Hit(const char* point) {
  FaultMode mode;
  int64_t delay_millis = 0;
  {
    std::lock_guard<std::mutex> lock(FaultMutex());
    ArmedFault& fault = Fault();
    if (!armed_.load(std::memory_order_relaxed) || fault.point != point) {
      return Status::Ok();
    }
    ++fault.hits;
    if (fault.hits < fault.trigger_hit) return Status::Ok();
    mode = fault.mode;
    delay_millis = fault.delay_millis;
    if (mode != FaultMode::kDelay) {
      // One-shot: a kill never returns; a fail should not re-fire on the
      // caller's cleanup/retry path unless re-armed.
      armed_.store(false, std::memory_order_release);
    }
  }
  switch (mode) {
    case FaultMode::kKill:
      // SIGKILL ourselves: no atexit handlers, no stream flushes, no
      // destructors — the closest a test can get to a power cut.
      std::raise(SIGKILL);
      std::abort();  // unreachable
    case FaultMode::kFail:
      return InternalError(std::string("injected fault at ") + point);
    case FaultMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
      return Status::Ok();
  }
  return Status::Ok();
}

int64_t FaultInjection::HitCount() {
  std::lock_guard<std::mutex> lock(FaultMutex());
  return Fault().hits;
}

}  // namespace plp
