#include "common/fault_injection.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace plp {
namespace {

// Armed-fault spec, guarded by a mutex: the slow path only runs while a
// fault is armed (tests and the chaos/crashtest drivers), never in
// production.
struct ArmedFault {
  std::string point;
  FaultMode mode = FaultMode::kKill;
  FaultTrigger trigger;
  int64_t delay_millis = 0;
  int64_t hits = 0;
  int64_t fires = 0;
  uint64_t coin_state = 0;  ///< kProbability stream position
};

std::mutex& FaultMutex() {
  static std::mutex m;
  return m;
}

ArmedFault& Fault() {
  static ArmedFault fault;
  return fault;
}

// splitmix64 step — the same self-contained generator the RNG seeding
// uses. The coin stream must not depend on any global RNG state so a
// seeded fault schedule replays identically regardless of what else the
// process draws.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double NextCoin(ArmedFault& fault) {
  return static_cast<double>(SplitMix64(fault.coin_state) >> 11) *
         0x1.0p-53;
}

// Whether this hit (already counted into fault.hits) fires the trigger.
bool TriggerFires(ArmedFault& fault) {
  switch (fault.trigger.kind) {
    case FaultTrigger::Kind::kOnce:
      // kDelay keeps the historical "every hit from n on" semantics; the
      // one-shot modes fire exactly once (they disarm right after anyway).
      return fault.mode == FaultMode::kDelay
                 ? fault.hits >= fault.trigger.n
                 : fault.hits == fault.trigger.n;
    case FaultTrigger::Kind::kEveryNth:
      return fault.hits % fault.trigger.n == 0;
    case FaultTrigger::Kind::kProbability:
      // One coin per hit, always consumed, so the stream position is a
      // pure function of (seed, hit index) — deterministic replay.
      return NextCoin(fault) < fault.trigger.probability;
  }
  return false;
}

}  // namespace

FaultTrigger FaultTrigger::Once(int64_t hit) {
  PLP_CHECK_GE(hit, 1);
  FaultTrigger t;
  t.kind = Kind::kOnce;
  t.n = hit;
  return t;
}

FaultTrigger FaultTrigger::EveryNth(int64_t period) {
  PLP_CHECK_GE(period, 1);
  FaultTrigger t;
  t.kind = Kind::kEveryNth;
  t.n = period;
  return t;
}

FaultTrigger FaultTrigger::WithProbability(double p, uint64_t seed) {
  PLP_CHECK(p >= 0.0 && p <= 1.0);
  FaultTrigger t;
  t.kind = Kind::kProbability;
  t.probability = p;
  t.seed = seed;
  return t;
}

std::atomic<bool> FaultInjection::armed_{false};

void FaultInjection::Arm(const std::string& point, FaultMode mode,
                         int64_t trigger_hit, int64_t delay_millis) {
  Arm(point, mode, FaultTrigger::Once(trigger_hit), delay_millis);
}

void FaultInjection::Arm(const std::string& point, FaultMode mode,
                         const FaultTrigger& trigger, int64_t delay_millis) {
  PLP_CHECK(!point.empty());
  PLP_CHECK_GE(trigger.n, 1);
  std::lock_guard<std::mutex> lock(FaultMutex());
  ArmedFault& fault = Fault();
  fault = ArmedFault{};
  fault.point = point;
  fault.mode = mode;
  fault.trigger = trigger;
  fault.delay_millis = delay_millis;
  fault.coin_state = trigger.seed;
  armed_.store(true, std::memory_order_release);
}

void FaultInjection::Disarm() {
  std::lock_guard<std::mutex> lock(FaultMutex());
  armed_.store(false, std::memory_order_release);
  Fault() = ArmedFault{};
}

void FaultInjection::ArmFromEnv() {
  const char* env = std::getenv("PLP_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);

  FaultTrigger trigger = FaultTrigger::Once(1);
  if (const size_t at = spec.find('@'); at != std::string::npos) {
    const std::string trigger_str = spec.substr(at + 1);
    spec.resize(at);
    PLP_CHECK(!trigger_str.empty());
    if (trigger_str.rfind("every", 0) == 0) {
      trigger = FaultTrigger::EveryNth(
          std::strtoll(trigger_str.c_str() + 5, nullptr, 10));
    } else if (trigger_str[0] == 'p') {
      char* end = nullptr;
      const double p = std::strtod(trigger_str.c_str() + 1, &end);
      PLP_CHECK(p >= 0.0 && p <= 1.0);
      uint64_t seed = 1;
      if (end != nullptr && *end == '/') {
        seed = std::strtoull(end + 1, nullptr, 10);
      } else {
        PLP_CHECK(end != nullptr && *end == '\0');
      }
      trigger = FaultTrigger::WithProbability(p, seed);
    } else {
      trigger = FaultTrigger::Once(
          std::strtoll(trigger_str.c_str(), nullptr, 10));
    }
  }
  FaultMode mode = FaultMode::kKill;
  int64_t delay_millis = 0;
  if (const size_t colon = spec.find(':'); colon != std::string::npos) {
    const std::string mode_str = spec.substr(colon + 1);
    spec.resize(colon);
    if (mode_str == "kill") {
      mode = FaultMode::kKill;
    } else if (mode_str == "fail") {
      mode = FaultMode::kFail;
    } else if (mode_str.rfind("delay", 0) == 0) {
      mode = FaultMode::kDelay;
      delay_millis = std::strtoll(mode_str.c_str() + 5, nullptr, 10);
      PLP_CHECK_GE(delay_millis, 0);
    } else {
      PLP_CHECK(false && "PLP_FAULT mode must be kill, fail, or delay<ms>");
    }
  }
  PLP_CHECK(!spec.empty());
  Arm(spec, mode, trigger, delay_millis);
}

Status FaultInjection::Hit(const char* point) {
  FaultMode mode;
  int64_t delay_millis = 0;
  {
    std::lock_guard<std::mutex> lock(FaultMutex());
    ArmedFault& fault = Fault();
    if (!armed_.load(std::memory_order_relaxed) || fault.point != point) {
      return Status::Ok();
    }
    ++fault.hits;
    if (!TriggerFires(fault)) return Status::Ok();
    ++fault.fires;
    mode = fault.mode;
    delay_millis = fault.delay_millis;
    if (mode != FaultMode::kDelay &&
        fault.trigger.kind == FaultTrigger::Kind::kOnce) {
      // One-shot: a kill never returns; a fail should not re-fire on the
      // caller's cleanup/retry path unless re-armed. Recurring triggers
      // (kEveryNth, kProbability) stay armed — that is their point.
      armed_.store(false, std::memory_order_release);
    }
  }
  switch (mode) {
    case FaultMode::kKill:
      // SIGKILL ourselves: no atexit handlers, no stream flushes, no
      // destructors — the closest a test can get to a power cut.
      std::raise(SIGKILL);
      std::abort();  // unreachable
    case FaultMode::kFail:
      return InternalError(std::string("injected fault at ") + point);
    case FaultMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
      return Status::Ok();
  }
  return Status::Ok();
}

int64_t FaultInjection::HitCount() {
  std::lock_guard<std::mutex> lock(FaultMutex());
  return Fault().hits;
}

int64_t FaultInjection::FireCount() {
  std::lock_guard<std::mutex> lock(FaultMutex());
  return Fault().fires;
}

}  // namespace plp
