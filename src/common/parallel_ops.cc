#include "common/parallel_ops.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace plp {
namespace {

/// splitmix64 finalizer (Steele et al.): a bijective avalanche mix, the
/// same scrambling the Rng constructor applies to its seed.
uint64_t SplitMix64Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

size_t NumBlocks(size_t n) {
  return (n + kParallelOpsBlockSize - 1) / kParallelOpsBlockSize;
}

/// Runs fn(block, begin, end) over every block, on the pool when one is
/// given and there is more than one block. The block decomposition is
/// identical either way.
template <typename Fn>
void ForEachBlock(size_t n, ThreadPool* pool, const Fn& fn) {
  const size_t blocks = NumBlocks(n);
  if (blocks == 0) return;
  auto run_block = [&](size_t b) {
    const size_t begin = b * kParallelOpsBlockSize;
    const size_t end = std::min(n, begin + kParallelOpsBlockSize);
    fn(b, begin, end);
  };
  if (pool == nullptr || blocks < 2) {
    for (size_t b = 0; b < blocks; ++b) run_block(b);
  } else {
    pool->ParallelFor(blocks, run_block);
  }
}

}  // namespace

uint64_t NoiseBlockSeed(uint64_t stream_seed, uint64_t block_index) {
  return SplitMix64Finalize(stream_seed +
                            (block_index + 1) * 0x9E3779B97F4A7C15ULL);
}

uint64_t DeriveStreamSeed(uint64_t base_seed, uint64_t lane) {
  return SplitMix64Finalize(base_seed ^ ((lane + 1) * 0xD1B54A32D192ED03ULL));
}

void AddGaussianNoiseBlocks(std::span<double> values, uint64_t stream_seed,
                            double stddev, ThreadPool* pool) {
  PLP_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return;
  ForEachBlock(values.size(), pool, [&](size_t b, size_t begin, size_t end) {
    Rng rng(NoiseBlockSeed(stream_seed, b));
    rng.AddGaussianNoise(values.subspan(begin, end - begin), stddev);
  });
}

void ZeroBlocks(std::span<double> values, ThreadPool* pool) {
  ForEachBlock(values.size(), pool, [&](size_t, size_t begin, size_t end) {
    std::fill(values.begin() + static_cast<ptrdiff_t>(begin),
              values.begin() + static_cast<ptrdiff_t>(end), 0.0);
  });
}

void ScaleBlocks(std::span<double> values, double factor, ThreadPool* pool) {
  ForEachBlock(values.size(), pool, [&](size_t, size_t begin, size_t end) {
    ScaleKernel(factor, values.data() + begin, end - begin);
  });
}

double SumSquaresBlocks(std::span<const double> values, ThreadPool* pool) {
  const size_t blocks = NumBlocks(values.size());
  std::vector<double> partial(blocks, 0.0);
  ForEachBlock(values.size(), pool, [&](size_t b, size_t begin, size_t end) {
    partial[b] = SumSquaresKernel(values.data() + begin, end - begin);
  });
  // Serial combine in block order keeps the FP summation order fixed.
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace plp
