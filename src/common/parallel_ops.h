#ifndef PLP_COMMON_PARALLEL_OPS_H_
#define PLP_COMMON_PARALLEL_OPS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/thread_pool.h"

namespace plp {

/// Deterministic block-decomposed vector operations.
///
/// The dense phase of Algorithm 1 — zeroing the update buffer, drawing
/// Gaussian noise on all 3·L·d coordinates, scaling by 1/|H| and taking
/// norms — is O(L·d) work per step that a sequential scalar Rng turns into
/// the dominant cost at realistic model sizes. These helpers partition the
/// coordinate space into fixed-size blocks; each block is an independent
/// unit of work whose result depends only on (inputs, block index), never
/// on which thread executes it. Serial execution (pool == nullptr) walks
/// the same blocks in the same order, so serial and parallel outputs are
/// bitwise identical for any pool size — the dense-phase counterpart of
/// the guarantee BucketSeed gives local training.

/// Block width in coordinates. Large enough that per-block Rng setup and
/// task dispatch are noise, small enough that a 50-dim model with a few
/// thousand locations still splits into enough blocks to fill a pool.
inline constexpr size_t kParallelOpsBlockSize = 8192;

/// Seed for block `block_index` of the noise stream `stream_seed`:
/// splitmix64's finalizer applied to stream_seed + (block_index+1)·golden,
/// i.e. a counter-based construction — any block's generator can be built
/// without sequencing through its predecessors, which is what makes the
/// noise embarrassingly parallel.
uint64_t NoiseBlockSeed(uint64_t stream_seed, uint64_t block_index);

/// Decorrelated per-lane stream seed (one lane per tensor) from a
/// step-level base seed.
uint64_t DeriveStreamSeed(uint64_t base_seed, uint64_t lane);

/// Adds iid N(0, stddev²) to every element. Block b draws from a fresh
/// Rng(NoiseBlockSeed(stream_seed, b)), so output is a pure function of
/// (values, stream_seed, stddev). Requires stddev >= 0; stddev == 0 is a
/// no-op.
void AddGaussianNoiseBlocks(std::span<double> values, uint64_t stream_seed,
                            double stddev, ThreadPool* pool = nullptr);

/// Sets every element to zero.
void ZeroBlocks(std::span<double> values, ThreadPool* pool = nullptr);

/// Multiplies every element by `factor`.
void ScaleBlocks(std::span<double> values, double factor,
                 ThreadPool* pool = nullptr);

/// Sum of squares: per-block partials via SumSquaresKernel, combined
/// serially in block order. The decomposition is the same with and without
/// a pool, so the result is bitwise identical for any pool size.
double SumSquaresBlocks(std::span<const double> values,
                        ThreadPool* pool = nullptr);

}  // namespace plp

#endif  // PLP_COMMON_PARALLEL_OPS_H_
