#ifndef PLP_COMMON_CHECK_H_
#define PLP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant-checking macros. A failed check means a programming error inside
/// the library (not bad user input — bad input surfaces as plp::Status). The
/// process is aborted with a diagnostic; checks are active in all build modes.

#define PLP_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "PLP_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#define PLP_CHECK_OK(status_expr)                                          \
  do {                                                                     \
    const auto& plp_check_status_ = (status_expr);                         \
    if (!plp_check_status_.ok()) {                                         \
      std::fprintf(stderr, "PLP_CHECK_OK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, plp_check_status_.ToString().c_str());        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define PLP_CHECK_GE(a, b) PLP_CHECK((a) >= (b))
#define PLP_CHECK_GT(a, b) PLP_CHECK((a) > (b))
#define PLP_CHECK_LE(a, b) PLP_CHECK((a) <= (b))
#define PLP_CHECK_LT(a, b) PLP_CHECK((a) < (b))
#define PLP_CHECK_EQ(a, b) PLP_CHECK((a) == (b))
#define PLP_CHECK_NE(a, b) PLP_CHECK((a) != (b))

#endif  // PLP_COMMON_CHECK_H_
