#ifndef PLP_COMMON_THREAD_POOL_H_
#define PLP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace plp {

/// Fixed-size worker pool. Bucket gradients in Algorithm 1 are independent,
/// so PlpTrainer can fan them out here; on a single-core host the pool
/// degrades gracefully to near-serial execution.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  /// Enqueues every task in `tasks` (moved from) under ONE lock
  /// acquisition and ONE condvar signal — notify_one for a single task,
  /// notify_all for more. A submitter pushing k requests pays one wakeup
  /// instead of k; on the open-loop serving path that is the difference
  /// between one syscall-bound signal per request and one per batch.
  void ScheduleAll(std::span<std::function<void()>> tasks);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Index in [0, num_threads) of the calling pool worker, or -1 when the
  /// caller is not a pool worker (e.g. the scheduling thread). Tasks run
  /// only on workers, so inside a ParallelFor body this is a valid index —
  /// which lets the trainer give each worker its own scratch buffers
  /// without locks.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace plp

#endif  // PLP_COMMON_THREAD_POOL_H_
