#ifndef PLP_COMMON_LOGGING_H_
#define PLP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace plp {

/// Severity levels for library logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo). Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace plp

#define PLP_LOG(level)                                        \
  ::plp::internal_logging::LogMessage(::plp::LogLevel::level, \
                                      __FILE__, __LINE__)

#endif  // PLP_COMMON_LOGGING_H_
