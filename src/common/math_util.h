#ifndef PLP_COMMON_MATH_UTIL_H_
#define PLP_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace plp {

// ---------------------------------------------------------------------------
// Vectorizable inner-loop kernels.
//
// These are the shared hot loops of the whole system: SGNS logits and
// backprop (sgns/loss.h), the bucket-delta reduction (sgns/sparse_delta.cc),
// and serving-side scoring (serve/model_snapshot.cc) all funnel through
// them. The reductions use four independent accumulators: a naive
// `s += a*b` loop serializes on FP-add latency (~4-5 cycles per element),
// while splitting the chain keeps the FMA ports busy — the difference
// between ~13k and >100k QPS on the serve path. The reassociation is
// *explicit* and fixed — `((s0+s1)+(s2+s3)) + tail` — so results are
// deterministic regardless of optimization level, call site, or thread
// count. Element-wise kernels (axpy/scale) have no cross-element
// dependency, so unrolling cannot change their results at all.
//
// The *Reference functions are the strict left-to-right scalar versions,
// kept only so equivalence tests can bound the reassociation error.
// ---------------------------------------------------------------------------

/// Dot product over raw arrays with four independent accumulators,
/// combined as ((s0+s1)+(s2+s3)) + tail. Deterministic for a given n.
template <typename T>
inline T DotKernel(const T* a, const T* b, size_t n) {
  T s0{}, s1{}, s2{}, s3{};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  T tail{};
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

/// Sum of squares with the same accumulation shape as DotKernel.
template <typename T>
inline T SumSquaresKernel(const T* x, size_t n) {
  return DotKernel(x, x, n);
}

/// y[i] += alpha * x[i]. Element-independent, so bitwise identical to the
/// scalar loop at any unroll factor.
template <typename T>
inline void AxpyKernel(T alpha, const T* x, T* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// x[i] *= alpha. Element-independent.
template <typename T>
inline void ScaleKernel(T alpha, T* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    x[i] *= alpha;
    x[i + 1] *= alpha;
    x[i + 2] *= alpha;
    x[i + 3] *= alpha;
  }
  for (; i < n; ++i) x[i] *= alpha;
}

/// Strict left-to-right scalar dot (equivalence-test oracle).
template <typename T>
inline T DotReference(const T* a, const T* b, size_t n) {
  T s{};
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Strict left-to-right scalar sum of squares (equivalence-test oracle).
template <typename T>
inline T SumSquaresReference(const T* x, size_t n) {
  return DotReference(x, x, n);
}

/// Scalar y[i] += alpha * x[i] (equivalence-test oracle).
template <typename T>
inline void AxpyReference(T alpha, const T* x, T* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Numerically stable log(exp(a) + exp(b)). Handles -inf inputs.
double LogAdd(double a, double b);

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(std::span<const double> xs);

/// log of the binomial coefficient C(n, k) via lgamma. Requires 0 <= k <= n.
double LogBinomial(int n, int k);

/// Standard normal CDF.
double NormalCdf(double x);

/// Regularized incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz's method). Requires a > 0, b > 0, x in [0, 1]. Used for
/// Student-t tail probabilities in the paired t-test.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x)/Γ(a),
/// series expansion for x < a + 1, continued fraction otherwise. Requires
/// a > 0, x >= 0. P(k/2, x/2) is the chi-square CDF with k degrees of
/// freedom at x.
double RegularizedLowerIncompleteGamma(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedUpperIncompleteGamma(double a, double x);

/// Complementary CDF of the Kolmogorov distribution,
/// Q(t) = 2 Σ_{k>=1} (−1)^{k−1} exp(−2 k² t²): the asymptotic null law of
/// √n·D_n for the one-sample Kolmogorov–Smirnov statistic. Requires t >= 0.
double KolmogorovComplementaryCdf(double t);

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

/// Euclidean (l2) norm of a vector. Uses SumSquaresKernel.
double L2Norm(std::span<const double> xs);

/// Dot product. Requires equal sizes. Uses DotKernel.
double Dot(std::span<const double> a, std::span<const double> b);

/// Scales every element so the vector has unit l2 norm; zero vectors are
/// left unchanged.
void NormalizeL2(std::span<double> xs);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace plp

#endif  // PLP_COMMON_MATH_UTIL_H_
