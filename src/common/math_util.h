#ifndef PLP_COMMON_MATH_UTIL_H_
#define PLP_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace plp {

// ---------------------------------------------------------------------------
// Vectorized inner-loop kernels.
//
// These are the shared hot loops of the whole system: SGNS logits and
// backprop (sgns/loss.h), the bucket-delta reduction (sgns/sparse_delta.cc),
// and serving-side scoring (serve/model_snapshot.cc) all funnel through
// them. Double-precision calls dispatch (once, at load) to an AVX2
// implementation when the CPU has it, falling back to the portable scalar
// version otherwise. The two implementations are *bitwise identical*:
//
//   * The dot reduction follows one fixed 16-lane spec — partial sum s_j
//     accumulates elements i ≡ j (mod 16) over the largest multiple of 16,
//     lanes combine as u_l = (s_l + s_{l+4}) + (s_{l+8} + s_{l+12}),
//     result = ((u0+u1) + (u2+u3)) + tail — which is exactly the shape a
//     4×256-bit-register accumulation produces, and which the scalar
//     fallback reproduces term for term. Sixteen independent add chains
//     also keep the FP ports busy instead of serializing on add latency.
//   * Element-wise kernels (axpy/scale/sub) have no cross-element
//     dependency, so vector width cannot change their results at all.
//   * The AVX2 bodies use separate multiply and add instructions — never
//     FMA contraction, whose fused rounding would make results differ
//     from the scalar spec.
//
// Consequently results are deterministic regardless of CPU, dispatch
// choice, call site, or thread count, and the golden CRC pins are
// machine-independent. The *Reference functions are the strict
// left-to-right scalar versions, kept only so equivalence tests can bound
// the reassociation error; the *Portable functions are the dispatch
// fallbacks, exposed so tests can check the AVX2 path against them
// bitwise.
// ---------------------------------------------------------------------------

/// Portable dot product implementing the fixed 16-lane reduction spec
/// documented above. Deterministic for a given n; the AVX2 path matches it
/// bitwise.
template <typename T>
inline T DotKernelPortable(const T* a, const T* b, size_t n) {
  T s[16] = {};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 16; ++j) s[j] += a[i + j] * b[i + j];
  }
  T tail{};
  for (; i < n; ++i) tail += a[i] * b[i];
  const T u0 = (s[0] + s[4]) + (s[8] + s[12]);
  const T u1 = (s[1] + s[5]) + (s[9] + s[13]);
  const T u2 = (s[2] + s[6]) + (s[10] + s[14]);
  const T u3 = (s[3] + s[7]) + (s[11] + s[15]);
  return ((u0 + u1) + (u2 + u3)) + tail;
}

/// Portable y[i] += alpha * x[i] (dispatch fallback).
template <typename T>
inline void AxpyKernelPortable(T alpha, const T* x, T* y, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Portable x[i] *= alpha (dispatch fallback).
template <typename T>
inline void ScaleKernelPortable(T alpha, T* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    x[i] *= alpha;
    x[i + 1] *= alpha;
    x[i + 2] *= alpha;
    x[i + 3] *= alpha;
  }
  for (; i < n; ++i) x[i] *= alpha;
}

/// Portable out[i] = a[i] - b[i] (dispatch fallback).
template <typename T>
inline void SubKernelPortable(const T* a, const T* b, T* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = a[i] - b[i];
    out[i + 1] = a[i + 1] - b[i + 1];
    out[i + 2] = a[i + 2] - b[i + 2];
    out[i + 3] = a[i + 3] - b[i + 3];
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

namespace internal_simd {

/// Double-precision kernel entry points, bound at static-initialization
/// time to the AVX2 bodies when the CPU supports them. Statically
/// initialized to the portable implementations, so a call from any other
/// translation unit's static initializer is safe (and, because both
/// implementations are bitwise identical, still correct).
extern double (*dot)(const double*, const double*, size_t);
extern void (*axpy)(double, const double*, double*, size_t);
extern void (*scale)(double, double*, size_t);
extern void (*sub)(const double*, const double*, double*, size_t);

/// Quantized-serving kernels (see "Quantized dot kernels" below): mixed
/// fp16·f32 and int8·f32 dots, dispatched like the double kernels.
extern float (*dot_f16)(const uint16_t*, const float*, size_t);
extern float (*dot_i8)(const int8_t*, const float*, size_t);

/// True when the AVX2 bodies are the active dispatch targets (for tests
/// and diagnostics).
bool Avx2Active();

/// True when the F16C-accelerated fp16 dot is the active dispatch target.
bool F16cActive();

}  // namespace internal_simd

/// Dot product over raw arrays under the fixed 16-lane reduction spec.
/// Doubles run the dispatched (AVX2 where available) implementation.
template <typename T>
inline T DotKernel(const T* a, const T* b, size_t n) {
  if constexpr (std::is_same_v<T, double>) {
    return internal_simd::dot(a, b, n);
  } else {
    return DotKernelPortable(a, b, n);
  }
}

/// Sum of squares with the same accumulation shape as DotKernel.
template <typename T>
inline T SumSquaresKernel(const T* x, size_t n) {
  return DotKernel(x, x, n);
}

/// y[i] += alpha * x[i]. Element-independent, so bitwise identical to the
/// scalar loop at any unroll or vector width.
template <typename T>
inline void AxpyKernel(T alpha, const T* x, T* y, size_t n) {
  if constexpr (std::is_same_v<T, double>) {
    internal_simd::axpy(alpha, x, y, n);
  } else {
    AxpyKernelPortable(alpha, x, y, n);
  }
}

/// x[i] *= alpha. Element-independent.
template <typename T>
inline void ScaleKernel(T alpha, T* x, size_t n) {
  if constexpr (std::is_same_v<T, double>) {
    internal_simd::scale(alpha, x, n);
  } else {
    ScaleKernelPortable(alpha, x, n);
  }
}

/// out[i] = a[i] - b[i]. Element-independent; out == a aliasing is allowed
/// (each slot is read before it is written). Used by the delta-extraction
/// paths (LocalModel::ExtractDelta, DiffModels).
template <typename T>
inline void SubKernel(const T* a, const T* b, T* out, size_t n) {
  if constexpr (std::is_same_v<T, double>) {
    internal_simd::sub(a, b, out, n);
  } else {
    SubKernelPortable(a, b, out, n);
  }
}

/// Strict left-to-right scalar dot (equivalence-test oracle).
template <typename T>
inline T DotReference(const T* a, const T* b, size_t n) {
  T s{};
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Strict left-to-right scalar sum of squares (equivalence-test oracle).
template <typename T>
inline T SumSquaresReference(const T* x, size_t n) {
  return DotReference(x, x, n);
}

/// Scalar y[i] += alpha * x[i] (equivalence-test oracle).
template <typename T>
inline void AxpyReference(T alpha, const T* x, T* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Scalar out[i] = a[i] - b[i] (equivalence-test oracle).
template <typename T>
inline void SubReference(const T* a, const T* b, T* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

// ---------------------------------------------------------------------------
// Quantized dot kernels (serving-side snapshot scoring).
//
// Published snapshots can store their embedding rows as IEEE fp16 or as
// symmetric per-row-scaled int8 instead of float32; scoring then needs a
// mixed-precision dot of a quantized row against a float32 profile. The
// kernels below follow the same discipline as the double kernels above:
// one fixed 16-lane float32 accumulation spec (identical lane shape and
// combine order), portable bodies as the dispatch defaults, and AVX2
// (+F16C for fp16) bodies bound at static initialization that reproduce
// the portable results bitwise — dequantization (half→float, int8→float)
// is exact in both paths, multiplies and adds stay separate instructions,
// and the per-lane add order matches term for term. Scores therefore do
// not depend on which body the dispatcher picked, and the quantization
// error bounds pinned by tests are machine-independent.
// ---------------------------------------------------------------------------

/// float → IEEE 754 binary16 bit pattern, round-to-nearest-even. Handles
/// normals, subnormals, overflow (→ ±inf) and NaN. This is the *build*
/// path (snapshot quantization), so it is pure portable code — the
/// scoring path never converts in this direction.
inline uint16_t FloatToHalf(float value) {
  uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const uint32_t sign = (f >> 16) & 0x8000u;
  f &= 0x7fffffffu;
  if (f > 0x7f800000u) return static_cast<uint16_t>(sign | 0x7e00u);  // NaN
  if (f >= 0x47800000u) {  // >= 2^16 after rounding: overflow to inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (f >= 0x38800000u) {  // normal half range [2^-14, 65504]
    const uint32_t mant = f & 0x7fffffu;
    const uint32_t exp = (f >> 23) - 112u;  // rebias 127 → 15
    uint32_t half = (exp << 10) | (mant >> 13);
    const uint32_t rem = mant & 0x1fffu;  // dropped low 13 bits
    half += (rem > 0x1000u) || (rem == 0x1000u && (half & 1u));
    return static_cast<uint16_t>(sign | half);
  }
  if (f < 0x32000000u) return static_cast<uint16_t>(sign);  // < 2^-27 → ±0
  // Subnormal half: value = m_h · 2^-24; shift the implicit-bit mantissa
  // down and round to nearest even. A carry out of m_h == 1023 lands on
  // the smallest normal bit pattern, which is exactly right.
  const uint32_t mant = (f & 0x7fffffu) | 0x800000u;
  const uint32_t shift = 126u - (f >> 23);  // in [14, 27]
  uint32_t half = mant >> shift;
  const uint32_t rem = mant & ((1u << shift) - 1u);
  const uint32_t halfway = 1u << (shift - 1);
  half += (rem > halfway) || (rem == halfway && (half & 1u));
  return static_cast<uint16_t>(sign | half);
}

/// IEEE 754 binary16 bit pattern → float. Exact (every half value is
/// representable in float), so software and F16C hardware conversion
/// agree bitwise — the property the dispatch equivalence tests pin.
inline float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // ±0
    } else {
      // Subnormal: normalize the mantissa into the implicit-bit position.
      uint32_t e = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++e;
      }
      f = sign | ((113u - e) << 23) | ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    f = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

/// Portable fp16·f32 dot under the fixed 16-lane float32 reduction spec.
inline float DotF16KernelPortable(const uint16_t* a, const float* b,
                                  size_t n) {
  float s[16] = {};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 16; ++j) s[j] += HalfToFloat(a[i + j]) * b[i + j];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += HalfToFloat(a[i]) * b[i];
  const float u0 = (s[0] + s[4]) + (s[8] + s[12]);
  const float u1 = (s[1] + s[5]) + (s[9] + s[13]);
  const float u2 = (s[2] + s[6]) + (s[10] + s[14]);
  const float u3 = (s[3] + s[7]) + (s[11] + s[15]);
  return ((u0 + u1) + (u2 + u3)) + tail;
}

/// Portable int8·f32 dot under the same spec. int8 → float is exact; the
/// caller applies the row's dequantization scale to the result (one
/// multiply per row instead of one per element).
inline float DotI8KernelPortable(const int8_t* a, const float* b, size_t n) {
  float s[16] = {};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 16; ++j) {
      s[j] += static_cast<float>(a[i + j]) * b[i + j];
    }
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += static_cast<float>(a[i]) * b[i];
  const float u0 = (s[0] + s[4]) + (s[8] + s[12]);
  const float u1 = (s[1] + s[5]) + (s[9] + s[13]);
  const float u2 = (s[2] + s[6]) + (s[10] + s[14]);
  const float u3 = (s[3] + s[7]) + (s[11] + s[15]);
  return ((u0 + u1) + (u2 + u3)) + tail;
}

/// Dispatched fp16·f32 dot (AVX2+F16C where available).
inline float DotF16Kernel(const uint16_t* a, const float* b, size_t n) {
  return internal_simd::dot_f16(a, b, n);
}

/// Dispatched int8·f32 dot (AVX2 where available). The result is in
/// quantized units; multiply by the row scale to recover the score.
inline float DotI8Kernel(const int8_t* a, const float* b, size_t n) {
  return internal_simd::dot_i8(a, b, n);
}

// ---------------------------------------------------------------------------
// Bounded transcendental lookup tables (word2vec's expTable idiom).
//
// The SGNS local update evaluates exp/sigmoid once per candidate per pair —
// by far the most expensive scalar math on the training hot path. These
// tables replace libm calls with one load and a linear interpolation over a
// fixed grid. The grid step is a power of two (1/256) and the bounds are
// integers, so grid-node arguments (notably x = 0, the shifted-softmax
// maximum) index the table exactly and reproduce the node value bitwise.
// Both tables are pure functions of their input: results are independent of
// thread count, call site, and evaluation order, which keeps the trainer's
// bitwise determinism contract intact.
//
// The *Reference functions are the libm versions kept as test oracles: the
// LUT accuracy suite bounds |lut - reference| over the bounded domain, and
// the finite-difference gradient test runs the loss under the reference
// policy (a piecewise-linear interpolant's slope differs from its value by
// O(step), which a numeric-vs-analytic gradient comparison would see).
// ---------------------------------------------------------------------------

/// σ(x) on [-kBound, kBound] by linear interpolation over 4096 intervals;
/// saturates to exactly 0.0 / 1.0 at and beyond the bounds (the gradient
/// is numerically saturated there anyway). Max abs error in-domain is
/// bounded by step²/8 · max|σ''| < 2e-7 (pinned by tests/common).
class SigmoidLut {
 public:
  static constexpr double kBound = 8.0;
  static constexpr double kInvStep = 256.0;  // 1/step; step = 2^-8
  static constexpr size_t kNumIntervals =
      static_cast<size_t>(2 * kBound * kInvStep);  // 4096

  /// The process-wide table (built on first use, immutable after).
  static const SigmoidLut& Get();

  double operator()(double x) const {
    if (x <= -kBound) return 0.0;
    if (x >= kBound) return 1.0;
    const double pos = (x + kBound) * kInvStep;
    const size_t k = static_cast<size_t>(pos);
    const double r = pos - static_cast<double>(k);
    return table_[k] + r * (table_[k + 1] - table_[k]);
  }

 private:
  SigmoidLut();
  double table_[kNumIntervals + 1];
};

/// exp(x) for x <= 0 on [-kBound, 0] by linear interpolation over 4096
/// intervals; exactly 1.0 at x >= 0 and exactly 0.0 at and below -kBound
/// (exp(-16) ≈ 1.1e-7 — a candidate that far under the max contributes
/// nothing to the sampled softmax). Max abs error in-domain < 2e-6.
class ExpNegLut {
 public:
  static constexpr double kBound = 16.0;
  static constexpr double kInvStep = 256.0;
  static constexpr size_t kNumIntervals =
      static_cast<size_t>(kBound * kInvStep);  // 4096

  static const ExpNegLut& Get();

  double operator()(double x) const {
    if (x >= 0.0) return 1.0;
    if (x <= -kBound) return 0.0;
    const double pos = (x + kBound) * kInvStep;
    const size_t k = static_cast<size_t>(pos);
    const double r = pos - static_cast<double>(k);
    return table_[k] + r * (table_[k + 1] - table_[k]);
  }

 private:
  ExpNegLut();
  double table_[kNumIntervals + 1];
};

/// Convenience wrapper over SigmoidLut::Get() for cold call sites. Hot
/// loops should hoist `const SigmoidLut& lut = SigmoidLut::Get()` instead.
double FastSigmoid(double x);

/// Builds both tables now instead of on first lookup, so the first timed
/// training step doesn't pay table construction.
void WarmFastMathTables();

/// libm sigmoid 1/(1+exp(-x)) — the LUT accuracy oracle.
double SigmoidReference(double x);

/// libm exp(x) for the ExpNegLut domain (callers pass x <= 0) — the LUT
/// accuracy oracle.
double ExpNegReference(double x);

/// Numerically stable log(exp(a) + exp(b)). Handles -inf inputs.
double LogAdd(double a, double b);

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(std::span<const double> xs);

/// log of the binomial coefficient C(n, k) via lgamma. Requires 0 <= k <= n.
double LogBinomial(int n, int k);

/// Standard normal CDF.
double NormalCdf(double x);

/// Regularized incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz's method). Requires a > 0, b > 0, x in [0, 1]. Used for
/// Student-t tail probabilities in the paired t-test.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x)/Γ(a),
/// series expansion for x < a + 1, continued fraction otherwise. Requires
/// a > 0, x >= 0. P(k/2, x/2) is the chi-square CDF with k degrees of
/// freedom at x.
double RegularizedLowerIncompleteGamma(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedUpperIncompleteGamma(double a, double x);

/// Complementary CDF of the Kolmogorov distribution,
/// Q(t) = 2 Σ_{k>=1} (−1)^{k−1} exp(−2 k² t²): the asymptotic null law of
/// √n·D_n for the one-sample Kolmogorov–Smirnov statistic. Requires t >= 0.
double KolmogorovComplementaryCdf(double t);

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

/// Euclidean (l2) norm of a vector. Uses SumSquaresKernel.
double L2Norm(std::span<const double> xs);

/// Dot product. Requires equal sizes. Uses DotKernel.
double Dot(std::span<const double> a, std::span<const double> b);

/// Scales every element so the vector has unit l2 norm; zero vectors are
/// left unchanged.
void NormalizeL2(std::span<double> xs);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace plp

#endif  // PLP_COMMON_MATH_UTIL_H_
