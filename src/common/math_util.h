#ifndef PLP_COMMON_MATH_UTIL_H_
#define PLP_COMMON_MATH_UTIL_H_

#include <span>
#include <vector>

namespace plp {

/// Numerically stable log(exp(a) + exp(b)). Handles -inf inputs.
double LogAdd(double a, double b);

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(std::span<const double> xs);

/// log of the binomial coefficient C(n, k) via lgamma. Requires 0 <= k <= n.
double LogBinomial(int n, int k);

/// Standard normal CDF.
double NormalCdf(double x);

/// Regularized incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz's method). Requires a > 0, b > 0, x in [0, 1]. Used for
/// Student-t tail probabilities in the paired t-test.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x)/Γ(a),
/// series expansion for x < a + 1, continued fraction otherwise. Requires
/// a > 0, x >= 0. P(k/2, x/2) is the chi-square CDF with k degrees of
/// freedom at x.
double RegularizedLowerIncompleteGamma(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedUpperIncompleteGamma(double a, double x);

/// Complementary CDF of the Kolmogorov distribution,
/// Q(t) = 2 Σ_{k>=1} (−1)^{k−1} exp(−2 k² t²): the asymptotic null law of
/// √n·D_n for the one-sample Kolmogorov–Smirnov statistic. Requires t >= 0.
double KolmogorovComplementaryCdf(double t);

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

/// Euclidean (l2) norm of a vector.
double L2Norm(std::span<const double> xs);

/// Dot product. Requires equal sizes.
double Dot(std::span<const double> a, std::span<const double> b);

/// Scales every element so the vector has unit l2 norm; zero vectors are
/// left unchanged.
void NormalizeL2(std::span<double> xs);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace plp

#endif  // PLP_COMMON_MATH_UTIL_H_
