#ifndef PLP_COMMON_RNG_H_
#define PLP_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace plp {

/// Complete serializable Rng state — the four xoshiro256++ words plus the
/// Box–Muller spare. Checkpoint/resume persists this so a resumed training
/// run continues the exact random stream of the interrupted one.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  double spare_gaussian = 0.0;
  bool has_spare_gaussian = false;
};

/// Deterministic, seedable pseudo-random generator (xoshiro256++) with the
/// sampling primitives the library needs. One Rng instance is not thread
/// safe; create one per thread (Fork() derives an independent stream).
///
/// All experiment code takes an explicit Rng so that every run — including
/// the DP noise draws — is reproducible from a single seed.
class Rng {
 public:
  /// Seeds the state from `seed` via splitmix64; any seed (including 0) is
  /// valid and produces a full-period stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns a new generator seeded from this one, with a decorrelated
  /// stream. Useful for giving worker threads or buckets their own streams.
  Rng Fork();

  /// Next raw 64 uniform bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (cached spare).
  double Gaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Adds iid N(0, stddev^2) noise to every element of `values`.
  void AddGaussianNoise(std::span<double> values, double stddev);

  /// Poisson-distributed integer with the given mean (mean >= 0).
  /// Knuth's method for small means, PTRS rejection for large ones.
  int64_t Poisson(double mean);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (Floyd's algorithm).
  /// Requires k <= n. Result order is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Snapshot of the full generator state. A generator restored from it
  /// continues the stream bit-exactly where the snapshot was taken.
  RngState SaveState() const;

  /// Overwrites this generator's state. Rejects (aborts on) the all-zero
  /// xoshiro state, which no valid SaveState can produce.
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// Zipf distribution over {0, 1, ..., n-1} with exponent s:
/// P(k) ∝ (k+1)^{-s}. Sampling is O(log n) via inverse-CDF binary search.
/// Used to model POI popularity skew in the synthetic check-in generator.
class ZipfDistribution {
 public:
  /// Requires n > 0 and s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double Pmf(size_t k) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k); cdf_.back() == 1.
};

/// Discrete distribution over arbitrary non-negative weights, sampled in
/// O(1) via Walker's alias method. Construction is O(n).
class AliasSampler {
 public:
  /// Requires at least one weight and a positive total weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace plp

#endif  // PLP_COMMON_RNG_H_
