#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace plp {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace plp
