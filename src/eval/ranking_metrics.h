#ifndef PLP_EVAL_RANKING_METRICS_H_
#define PLP_EVAL_RANKING_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "eval/hit_rate.h"
#include "sgns/model.h"

namespace plp::eval {

/// Ranking metrics beyond HR@k for the same leave-one-out protocol. The
/// paper reports HR@k only; MRR and NDCG@k are the customary companions in
/// the recommender literature it cites ([10, 26, 35, 58]) and are useful
/// when comparing variants whose HR@k ties.
struct RankingMetrics {
  int64_t num_examples = 0;
  /// Mean reciprocal rank of the true next location, with ranks capped at
  /// `rank_cap` (reciprocal contribution 0 beyond the cap).
  double mean_reciprocal_rank = 0.0;
  /// Normalized discounted cumulative gain at k: with one relevant item
  /// per example this is 1/log2(rank + 2) averaged (0 when outside top-k).
  double ndcg_at_k = 0.0;
  int32_t k = 0;
  int32_t rank_cap = 0;
};

/// Evaluates MRR (capped at `rank_cap`) and NDCG@k over leave-one-out
/// examples. Fails on empty input or non-positive k / rank_cap; labels
/// must be inside the model's vocabulary.
Result<RankingMetrics> EvaluateRankingMetrics(
    const sgns::SgnsModel& model, const std::vector<EvalExample>& examples,
    int32_t k = 10, int32_t rank_cap = 100);

}  // namespace plp::eval

#endif  // PLP_EVAL_RANKING_METRICS_H_
