#include "eval/recommender.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace plp::eval {

Recommender::Recommender(const sgns::SgnsModel& model)
    : num_locations_(model.num_locations()),
      dim_(model.dim()),
      embeddings_(model.NormalizedEmbeddings()) {}

Recommender::Recommender(int32_t num_locations, int32_t dim,
                         std::vector<double> unit_embeddings)
    : num_locations_(num_locations),
      dim_(dim),
      embeddings_(std::move(unit_embeddings)) {
  PLP_CHECK_GT(num_locations_, 0);
  PLP_CHECK_GT(dim_, 0);
  PLP_CHECK_EQ(embeddings_.size(),
               static_cast<size_t>(num_locations_) *
                   static_cast<size_t>(dim_));
}

std::vector<double> Recommender::Scores(
    std::span<const int32_t> recent) const {
  PLP_CHECK(!recent.empty());
  // F(ζ): average the stacked (unit) embedding vectors, then normalize so
  // the dot product below is cosine similarity.
  std::vector<double> profile(static_cast<size_t>(dim_), 0.0);
  for (int32_t l : recent) {
    PLP_CHECK(l >= 0 && l < num_locations_);
    const double* row = embeddings_.data() + static_cast<size_t>(l) * dim_;
    for (int32_t d = 0; d < dim_; ++d) profile[d] += row[d];
  }
  NormalizeL2(profile);

  std::vector<double> scores(static_cast<size_t>(num_locations_));
  for (int32_t l = 0; l < num_locations_; ++l) {
    const double* row = embeddings_.data() + static_cast<size_t>(l) * dim_;
    double s = 0.0;
    for (int32_t d = 0; d < dim_; ++d) s += row[d] * profile[d];
    scores[static_cast<size_t>(l)] = s;
  }
  return scores;
}

std::vector<int32_t> Recommender::TopK(std::span<const int32_t> recent,
                                       int32_t k,
                                       std::span<const int32_t> exclude)
    const {
  PLP_CHECK_GT(k, 0);
  const std::vector<double> scores = Scores(recent);
  std::vector<char> excluded(static_cast<size_t>(num_locations_), 0);
  for (int32_t l : exclude) {
    PLP_CHECK(l >= 0 && l < num_locations_);
    excluded[static_cast<size_t>(l)] = 1;
  }
  std::vector<int32_t> candidates;
  candidates.reserve(static_cast<size_t>(num_locations_));
  for (int32_t l = 0; l < num_locations_; ++l) {
    if (!excluded[static_cast<size_t>(l)]) candidates.push_back(l);
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<int64_t>(take),
                    candidates.end(), [&](int32_t a, int32_t b) {
                      const double sa = scores[static_cast<size_t>(a)];
                      const double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;  // deterministic tie-break
                    });
  candidates.resize(take);
  return candidates;
}

}  // namespace plp::eval
