#ifndef PLP_EVAL_HIT_RATE_H_
#define PLP_EVAL_HIT_RATE_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "sgns/model.h"

namespace plp::eval {

/// One leave-one-out test case: predict `label` from `history`.
struct EvalExample {
  std::vector<int32_t> history;  ///< the first t−1 visits of a trajectory
  int32_t label = 0;             ///< the t-th visit
};

/// Builds the leave-one-out evaluation set of Section 5.1: holdout users'
/// check-ins are cut into trajectories of at most six hours
/// (`max_session_seconds`), and every trajectory with >= 2 visits yields
/// one example (first t−1 visits → t-th visit).
std::vector<EvalExample> BuildLeaveOneOutExamples(
    const data::CheckInDataset& holdout,
    int64_t max_session_seconds = 6 * 3600,
    int64_t max_gap_seconds = 6 * 3600);

/// Same leave-one-out construction from one user's raw (location,
/// timestamp) arrays — the shape the mmap-backed check-in store hands out
/// — replicating CheckInDataset::Sessionize's cutting rules exactly: a
/// new trajectory starts when the session would exceed
/// `max_session_seconds` from its first visit or the gap since the
/// previous visit exceeds `max_gap_seconds`. Appends to `out` so holdout
/// users can be streamed one at a time.
void AppendLeaveOneOutExamples(std::span<const int32_t> locations,
                               std::span<const int64_t> timestamps,
                               std::vector<EvalExample>& out,
                               int64_t max_session_seconds = 6 * 3600,
                               int64_t max_gap_seconds = 6 * 3600);

/// HR@k for each requested k plus the example count.
struct HitRateResult {
  std::map<int32_t, double> hit_rate;  ///< k → HR@k
  int64_t num_examples = 0;

  double at(int32_t k) const;  ///< aborts if k was not evaluated
};

/// Evaluates HR@k ("whether the test location is in the top-k locations of
/// the recommendation list"; the outcome per example is binary). `ks` must
/// be non-empty and positive. Fails if `examples` is empty.
Result<HitRateResult> EvaluateHitRate(const sgns::SgnsModel& model,
                                      const std::vector<EvalExample>& examples,
                                      const std::vector<int32_t>& ks);

}  // namespace plp::eval

#endif  // PLP_EVAL_HIT_RATE_H_
