#ifndef PLP_EVAL_RECOMMENDER_H_
#define PLP_EVAL_RECOMMENDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sgns/model.h"

namespace plp::eval {

/// Next-location recommender built from a trained model's unit-normalized
/// embedding matrix (Section 3.3 "Model Utilization"): the user's recent
/// check-ins ζ are embedded, averaged into F(ζ), and every location is
/// scored by cosine similarity (dot product on unit vectors).
class Recommender {
 public:
  /// Snapshots the model's normalized embeddings; the model may be
  /// discarded afterwards ("only the embedding matrix is deployed").
  explicit Recommender(const sgns::SgnsModel& model);

  /// Builds directly from a deployment artifact: a row-major L × dim
  /// matrix of unit-norm rows (sgns::LoadEmbeddings output). Aborts on a
  /// shape mismatch; rows are trusted to be unit length.
  Recommender(int32_t num_locations, int32_t dim,
              std::vector<double> unit_embeddings);

  int32_t num_locations() const { return num_locations_; }
  int32_t dim() const { return dim_; }

  /// Cosine scores of every location against F(recent). Locations in
  /// `recent` must be valid ids; invalid ids abort.
  std::vector<double> Scores(std::span<const int32_t> recent) const;

  /// Top-k locations by score, highest first. Locations listed in
  /// `exclude` are skipped (e.g. to avoid recommending the current POI).
  /// k is capped at the number of eligible locations.
  std::vector<int32_t> TopK(std::span<const int32_t> recent, int32_t k,
                            std::span<const int32_t> exclude = {}) const;

 private:
  int32_t num_locations_ = 0;
  int32_t dim_ = 0;
  std::vector<double> embeddings_;  // row-major L × dim, rows unit-norm
};

}  // namespace plp::eval

#endif  // PLP_EVAL_RECOMMENDER_H_
