#include "eval/hit_rate.h"

#include <algorithm>

#include "common/check.h"
#include "eval/recommender.h"

namespace plp::eval {

std::vector<EvalExample> BuildLeaveOneOutExamples(
    const data::CheckInDataset& holdout, int64_t max_session_seconds,
    int64_t max_gap_seconds) {
  std::vector<EvalExample> examples;
  for (int32_t u = 0; u < holdout.num_users(); ++u) {
    for (std::vector<int32_t>& session :
         holdout.Sessionize(u, max_session_seconds, max_gap_seconds)) {
      if (session.size() < 2) continue;
      EvalExample ex;
      ex.label = session.back();
      session.pop_back();
      ex.history = std::move(session);
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

void AppendLeaveOneOutExamples(std::span<const int32_t> locations,
                               std::span<const int64_t> timestamps,
                               std::vector<EvalExample>& out,
                               int64_t max_session_seconds,
                               int64_t max_gap_seconds) {
  PLP_CHECK_EQ(locations.size(), timestamps.size());
  PLP_CHECK_GT(max_session_seconds, 0);
  PLP_CHECK_GT(max_gap_seconds, 0);
  std::vector<int32_t> session;
  int64_t session_start = 0;
  int64_t previous = 0;
  auto flush = [&out, &session] {
    if (session.size() >= 2) {
      EvalExample ex;
      ex.label = session.back();
      session.pop_back();
      ex.history = std::move(session);
      out.push_back(std::move(ex));
    }
    session.clear();
  };
  for (size_t i = 0; i < locations.size(); ++i) {
    const int64_t t = timestamps[i];
    const bool start_new = session.empty() ||
                           t - session_start > max_session_seconds ||
                           t - previous > max_gap_seconds;
    if (start_new) {
      flush();
      session_start = t;
    }
    session.push_back(locations[i]);
    previous = t;
  }
  flush();
}

double HitRateResult::at(int32_t k) const {
  const auto it = hit_rate.find(k);
  PLP_CHECK(it != hit_rate.end());
  return it->second;
}

Result<HitRateResult> EvaluateHitRate(const sgns::SgnsModel& model,
                                      const std::vector<EvalExample>& examples,
                                      const std::vector<int32_t>& ks) {
  if (examples.empty()) {
    return InvalidArgumentError("no evaluation examples");
  }
  if (ks.empty()) return InvalidArgumentError("no k values requested");
  for (int32_t k : ks) {
    if (k <= 0) return InvalidArgumentError("k must be > 0");
  }
  const int32_t max_k = *std::max_element(ks.begin(), ks.end());

  Recommender recommender(model);
  std::map<int32_t, int64_t> hits;
  for (int32_t k : ks) hits[k] = 0;

  for (const EvalExample& ex : examples) {
    if (ex.label < 0 || ex.label >= recommender.num_locations()) {
      return InvalidArgumentError("example label outside the vocabulary");
    }
    const std::vector<int32_t> top =
        recommender.TopK(ex.history, max_k);
    // Rank of the label within the top list (max_k if absent).
    int32_t rank = max_k;
    for (size_t i = 0; i < top.size(); ++i) {
      if (top[i] == ex.label) {
        rank = static_cast<int32_t>(i);
        break;
      }
    }
    for (int32_t k : ks) {
      if (rank < k) ++hits[k];
    }
  }

  HitRateResult result;
  result.num_examples = static_cast<int64_t>(examples.size());
  for (int32_t k : ks) {
    result.hit_rate[k] = static_cast<double>(hits[k]) /
                         static_cast<double>(result.num_examples);
  }
  return result;
}

}  // namespace plp::eval
