#include "eval/ranking_metrics.h"

#include <cmath>

#include "eval/recommender.h"

namespace plp::eval {

Result<RankingMetrics> EvaluateRankingMetrics(
    const sgns::SgnsModel& model, const std::vector<EvalExample>& examples,
    int32_t k, int32_t rank_cap) {
  if (examples.empty()) return InvalidArgumentError("no examples");
  if (k <= 0) return InvalidArgumentError("k must be > 0");
  if (rank_cap < k) {
    return InvalidArgumentError("rank_cap must be >= k");
  }
  Recommender recommender(model);

  RankingMetrics metrics;
  metrics.k = k;
  metrics.rank_cap = rank_cap;
  metrics.num_examples = static_cast<int64_t>(examples.size());
  double rr_sum = 0.0;
  double ndcg_sum = 0.0;
  for (const EvalExample& ex : examples) {
    if (ex.label < 0 || ex.label >= recommender.num_locations()) {
      return InvalidArgumentError("example label outside the vocabulary");
    }
    const std::vector<int32_t> top = recommender.TopK(ex.history, rank_cap);
    int32_t rank = rank_cap;  // sentinel: not found within the cap
    for (size_t i = 0; i < top.size(); ++i) {
      if (top[i] == ex.label) {
        rank = static_cast<int32_t>(i);
        break;
      }
    }
    if (rank < rank_cap) {
      rr_sum += 1.0 / static_cast<double>(rank + 1);
      if (rank < k) {
        // Single relevant item: DCG = 1/log2(rank+2), ideal DCG = 1.
        ndcg_sum += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
      }
    }
  }
  metrics.mean_reciprocal_rank =
      rr_sum / static_cast<double>(metrics.num_examples);
  metrics.ndcg_at_k = ndcg_sum / static_cast<double>(metrics.num_examples);
  return metrics;
}

}  // namespace plp::eval
