#include "data/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/check.h"

namespace plp::data {

StatsAccumulator::StatsAccumulator(int32_t num_locations)
    : num_locations_(num_locations),
      location_counts_(static_cast<size_t>(std::max(num_locations, 0)), 0) {}

void StatsAccumulator::AddUser(std::span<const int32_t> locations) {
  user_counts_.push_back(static_cast<int64_t>(locations.size()));
  num_checkins_ += static_cast<int64_t>(locations.size());
  for (int32_t l : locations) {
    PLP_CHECK(l >= 0 && l < num_locations_);
    ++location_counts_[static_cast<size_t>(l)];
  }
}

DatasetStats StatsAccumulator::Finalize() const {
  DatasetStats stats;
  stats.num_users = static_cast<int32_t>(user_counts_.size());
  stats.num_locations = num_locations_;
  stats.num_checkins = num_checkins_;
  if (stats.num_users > 0 && num_locations_ > 0) {
    // Density counts distinct (user, POI) cells at most once per visit;
    // visit counts overestimate it, so recompute the classic bound the
    // way the dataset does: non-zero cells / (users · locations). A
    // streaming pass cannot know distinct cells without O(cells) state,
    // so approximate with the visit-based upper bound capped at 1 — the
    // dataset overload below reports the exact value.
    stats.density = std::min(
        1.0, static_cast<double>(num_checkins_) /
                 (static_cast<double>(stats.num_users) *
                  static_cast<double>(num_locations_)));
  }
  if (stats.num_users == 0) return stats;

  std::vector<int64_t> per_user = user_counts_;
  std::sort(per_user.begin(), per_user.end());
  stats.user_checkins_mean = static_cast<double>(stats.num_checkins) /
                             static_cast<double>(stats.num_users);
  stats.user_checkins_median = per_user[per_user.size() / 2];
  stats.user_checkins_p90 = per_user[(per_user.size() * 9) / 10];
  stats.user_checkins_max = per_user.back();

  if (num_locations_ > 0 && num_checkins_ > 0) {
    std::vector<int64_t> visits = location_counts_;
    std::sort(visits.begin(), visits.end());
    // Gini = (2·Σ i·x_i / (n·Σ x_i)) − (n + 1)/n with 1-based ranks over
    // ascending values.
    const double n = static_cast<double>(visits.size());
    double weighted = 0.0, total = 0.0;
    for (size_t i = 0; i < visits.size(); ++i) {
      weighted +=
          static_cast<double>(i + 1) * static_cast<double>(visits[i]);
      total += static_cast<double>(visits[i]);
    }
    stats.location_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    const size_t top = std::max<size_t>(1, visits.size() / 100);
    double top_visits = 0.0;
    for (size_t i = visits.size() - top; i < visits.size(); ++i) {
      top_visits += static_cast<double>(visits[i]);
    }
    stats.top1pct_share = top_visits / total;
  }
  return stats;
}

DatasetStats ComputeStats(const CheckInDataset& dataset) {
  StatsAccumulator accumulator(dataset.num_locations());
  std::vector<int32_t> locations;
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    locations.clear();
    for (const CheckIn& c : dataset.UserCheckIns(u)) {
      locations.push_back(c.location);
    }
    accumulator.AddUser(locations);
  }
  DatasetStats stats = accumulator.Finalize();
  stats.density = dataset.Density();  // exact distinct-cell density
  return stats;
}

DatasetStats ComputeStats(const CorpusView& corpus) {
  StatsAccumulator accumulator(corpus.NumLocations());
  std::vector<std::span<const int32_t>> sentences;
  std::vector<int32_t> flat;
  for (int32_t u = 0; u < corpus.NumUsers(); ++u) {
    sentences.clear();
    corpus.AppendUserSentences(u, sentences);
    if (sentences.size() == 1) {
      accumulator.AddUser(sentences[0]);
      continue;
    }
    flat.clear();
    for (const auto& s : sentences) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    accumulator.AddUser(flat);
  }
  return accumulator.Finalize();
}

std::string DatasetStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%d users, %d locations, %lld check-ins (density %.4f%%)\n"
      "per-user check-ins: mean %.1f, median %lld, p90 %lld, max %lld\n"
      "POI popularity: Gini %.3f, top-1%% POIs hold %.1f%% of visits",
      num_users, num_locations, static_cast<long long>(num_checkins),
      100.0 * density, user_checkins_mean,
      static_cast<long long>(user_checkins_median),
      static_cast<long long>(user_checkins_p90),
      static_cast<long long>(user_checkins_max), location_gini,
      100.0 * top1pct_share);
  return buf;
}

}  // namespace plp::data
