#include "data/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace plp::data {

DatasetStats ComputeStats(const CheckInDataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_users();
  stats.num_locations = dataset.num_locations();
  stats.num_checkins = dataset.num_checkins();
  stats.density = dataset.Density();
  if (stats.num_users == 0) return stats;

  std::vector<int64_t> per_user = dataset.UserRecordCounts();
  std::sort(per_user.begin(), per_user.end());
  stats.user_checkins_mean = static_cast<double>(stats.num_checkins) /
                             static_cast<double>(stats.num_users);
  stats.user_checkins_median = per_user[per_user.size() / 2];
  stats.user_checkins_p90 = per_user[(per_user.size() * 9) / 10];
  stats.user_checkins_max = per_user.back();

  if (stats.num_locations > 0 && stats.num_checkins > 0) {
    std::vector<int64_t> visits(static_cast<size_t>(stats.num_locations),
                                0);
    for (int32_t u = 0; u < stats.num_users; ++u) {
      for (const CheckIn& c : dataset.UserCheckIns(u)) {
        ++visits[static_cast<size_t>(c.location)];
      }
    }
    std::sort(visits.begin(), visits.end());
    // Gini = (2·Σ i·x_i / (n·Σ x_i)) − (n + 1)/n with 1-based ranks over
    // ascending values.
    const double n = static_cast<double>(visits.size());
    double weighted = 0.0, total = 0.0;
    for (size_t i = 0; i < visits.size(); ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(visits[i]);
      total += static_cast<double>(visits[i]);
    }
    stats.location_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    const size_t top = std::max<size_t>(1, visits.size() / 100);
    double top_visits = 0.0;
    for (size_t i = visits.size() - top; i < visits.size(); ++i) {
      top_visits += static_cast<double>(visits[i]);
    }
    stats.top1pct_share = top_visits / total;
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%d users, %d locations, %lld check-ins (density %.4f%%)\n"
      "per-user check-ins: mean %.1f, median %lld, p90 %lld, max %lld\n"
      "POI popularity: Gini %.3f, top-1%% POIs hold %.1f%% of visits",
      num_users, num_locations, static_cast<long long>(num_checkins),
      100.0 * density, user_checkins_mean,
      static_cast<long long>(user_checkins_median),
      static_cast<long long>(user_checkins_p90),
      static_cast<long long>(user_checkins_max), location_gini,
      100.0 * top1pct_share);
  return buf;
}

}  // namespace plp::data
