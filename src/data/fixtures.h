#ifndef PLP_DATA_FIXTURES_H_
#define PLP_DATA_FIXTURES_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/corpus.h"
#include "data/dataset.h"

namespace plp::data {

/// Shape of a deterministic fixture corpus (see MakeFixtureCorpus).
///
/// Tests and benches previously each hand-rolled their own small corpora
/// with ad-hoc seeds; these builders are the single source of fixture
/// randomness. Same seed + options → bitwise-identical corpus, forever:
/// determinism regression tests pin model bytes against corpora built
/// here, so the generation procedure must never change for existing
/// option combinations.
struct FixtureCorpusOptions {
  int32_t num_users = 60;
  int32_t num_locations = 30;
  /// Per-user sentence length, drawn uniformly in [min, max] (inclusive).
  /// Equal values give every user exactly that many tokens.
  int32_t min_tokens_per_user = 5;
  int32_t max_tokens_per_user = 30;
  /// 0: tokens are uniform over all locations (no learnable structure —
  /// right for invariant tests, where signal content is irrelevant).
  /// > 0: each user walks inside a random neighborhood of this many
  /// consecutive locations, which gives the co-visitation structure a
  /// skip-gram can learn (right for training-dynamics tests).
  int32_t neighborhood = 0;
};

/// One single-sentence user per entry, generated deterministically from
/// `seed`. Every user contributes exactly one sentence, matching the
/// user-level-DP unit the trainer samples and groups.
TrainingCorpus MakeFixtureCorpus(uint64_t seed,
                                 const FixtureCorpusOptions& options = {});

/// A corpus of `num_users` light users plus one "giant" user holding
/// `giant_tokens` tokens — the adversarial shape for user-level DP
/// clipping (the giant user's delta must still be clipped to C). The
/// giant user has index num_users (last).
TrainingCorpus MakeGiantUserCorpus(uint64_t seed, int32_t num_users,
                                   int32_t num_locations,
                                   int32_t giant_tokens);

/// The filtered synthetic check-in dataset every figure bench evaluates
/// on, deduped here so benches and integration tests share one seed
/// policy. `scale` is "small" (down-scaled city, minutes per sweep) or
/// "paper" (the paper's dataset dimensions). Fails on an unknown scale.
Result<CheckInDataset> MakeFixtureDataset(uint64_t seed,
                                          const std::string& scale);

}  // namespace plp::data

#endif  // PLP_DATA_FIXTURES_H_
