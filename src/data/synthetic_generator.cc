#include "data/synthetic_generator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"
#include "data/store/store_writer.h"

namespace plp::data {
namespace {

Status ValidateConfig(const SyntheticConfig& c) {
  if (c.num_users <= 0) return InvalidArgumentError("num_users must be > 0");
  if (c.num_locations <= 0) {
    return InvalidArgumentError("num_locations must be > 0");
  }
  if (c.num_clusters <= 0 || c.num_clusters > c.num_locations) {
    return InvalidArgumentError("num_clusters must be in [1, num_locations]");
  }
  if (c.zipf_exponent < 0) {
    return InvalidArgumentError("zipf_exponent must be >= 0");
  }
  if (c.return_probability < 0 || c.return_probability > 1) {
    return InvalidArgumentError("return_probability must be in [0, 1]");
  }
  if (c.home_cluster_affinity < 0 || c.home_cluster_affinity > 1) {
    return InvalidArgumentError("home_cluster_affinity must be in [0, 1]");
  }
  if (c.min_checkins_per_user < 1 ||
      c.max_checkins_per_user < c.min_checkins_per_user) {
    return InvalidArgumentError("invalid per-user check-in bounds");
  }
  if (c.session_length_min < 1 ||
      c.session_length_max < c.session_length_min) {
    return InvalidArgumentError("invalid session length bounds");
  }
  if (c.mean_hours_between_sessions <= 0 ||
      c.mean_minutes_between_checkins <= 0) {
    return InvalidArgumentError("inter-event means must be > 0");
  }
  if (c.bbox.north <= c.bbox.south || c.bbox.east <= c.bbox.west) {
    return InvalidArgumentError("degenerate bounding box");
  }
  return Status::Ok();
}

/// World-level state shared by every user trajectory: the city's districts,
/// its POIs with their geography and Zipf popularity, and the popularity
/// samplers. O(num_locations) memory — this is the only per-corpus state
/// the streaming mode holds, which is what bounds its resident set.
struct World {
  std::vector<int32_t> location_cluster;
  std::vector<double> location_lat, location_lon;
  std::vector<double> location_weight;
  std::vector<std::vector<int32_t>> cluster_locations;
  std::vector<AliasSampler> cluster_popularity;
  // No default constructor on AliasSampler; filled during BuildWorld.
  std::optional<AliasSampler> cluster_sampler;
  std::optional<AliasSampler> global_popularity;
};

/// Draws the world. RNG consumption: 2 uniforms per cluster center, then
/// one cluster sample + 2 gaussians per POI — identical to the historical
/// monolithic generator, so (config, seed) keeps producing the same city.
World BuildWorld(const SyntheticConfig& config, Rng& rng) {
  const int32_t num_clusters = config.num_clusters;
  const int32_t num_locations = config.num_locations;
  World world;

  // District centers scattered in the bounding box; district popularity
  // itself is skewed (downtown effect).
  std::vector<double> center_lat(num_clusters), center_lon(num_clusters);
  for (int32_t k = 0; k < num_clusters; ++k) {
    center_lat[k] = rng.Uniform(config.bbox.south, config.bbox.north);
    center_lon[k] = rng.Uniform(config.bbox.west, config.bbox.east);
  }
  std::vector<double> cluster_weight(num_clusters);
  for (int32_t k = 0; k < num_clusters; ++k) {
    cluster_weight[k] = std::pow(static_cast<double>(k + 1), -0.8);
  }
  world.cluster_sampler.emplace(cluster_weight);

  // POIs: assign to a district, scatter geographically, give Zipf weight.
  ZipfDistribution popularity(static_cast<size_t>(num_locations),
                              config.zipf_exponent);
  world.location_cluster.resize(num_locations);
  world.location_lat.resize(num_locations);
  world.location_lon.resize(num_locations);
  world.location_weight.resize(num_locations);
  world.cluster_locations.resize(num_clusters);
  for (int32_t l = 0; l < num_locations; ++l) {
    const int32_t k = static_cast<int32_t>(world.cluster_sampler->Sample(rng));
    world.location_cluster[l] = k;
    world.location_lat[l] = Clamp(
        rng.Gaussian(center_lat[k], config.cluster_stddev_deg),
        config.bbox.south, config.bbox.north);
    world.location_lon[l] = Clamp(
        rng.Gaussian(center_lon[k], config.cluster_stddev_deg),
        config.bbox.west, config.bbox.east);
    world.location_weight[l] = popularity.Pmf(static_cast<size_t>(l));
    world.cluster_locations[k].push_back(l);
  }
  // A cluster can end up empty (alias sampling); steal a POI from the
  // currently largest cluster so per-cluster samplers are well-formed.
  // num_clusters <= num_locations guarantees a donor with >= 2 POIs exists
  // while any cluster is empty.
  for (int32_t k = 0; k < num_clusters; ++k) {
    if (!world.cluster_locations[k].empty()) continue;
    int32_t donor = 0;
    for (int32_t j = 1; j < num_clusters; ++j) {
      if (world.cluster_locations[j].size() >
          world.cluster_locations[donor].size()) {
        donor = j;
      }
    }
    PLP_CHECK_GE(world.cluster_locations[donor].size(), 2u);
    const int32_t l = world.cluster_locations[donor].back();
    world.cluster_locations[donor].pop_back();
    world.location_cluster[l] = k;
    world.cluster_locations[k].push_back(l);
  }

  // Per-cluster popularity samplers.
  world.cluster_popularity.reserve(num_clusters);
  for (int32_t k = 0; k < num_clusters; ++k) {
    std::vector<double> w;
    w.reserve(world.cluster_locations[k].size());
    for (int32_t l : world.cluster_locations[k]) {
      w.push_back(world.location_weight[l]);
    }
    world.cluster_popularity.emplace_back(w);
  }
  world.global_popularity.emplace(world.location_weight);
  return world;
}

/// One user's exploration / preferential-return trajectory. Appends the
/// visited locations and their timestamps (time-ordered) and returns the
/// user's home cluster. RNG consumption is identical to the historical
/// per-user loop of the monolithic generator.
int32_t GenerateUserTrajectory(const World& world,
                               const SyntheticConfig& config, Rng& rng,
                               std::vector<int32_t>& locations,
                               std::vector<int64_t>& timestamps) {
  locations.clear();
  timestamps.clear();
  const int32_t home =
      static_cast<int32_t>(world.cluster_sampler->Sample(rng));

  const double raw = std::exp(
      rng.Gaussian(config.log_checkins_mean, config.log_checkins_stddev));
  const int32_t target_checkins = static_cast<int32_t>(Clamp(
      std::round(raw), config.min_checkins_per_user,
      config.max_checkins_per_user));

  // Exploration/preferential-return mobility.
  std::vector<double> visit_count;  // per distinct visited location
  std::vector<int32_t> distinct;    // distinct visited locations
  auto explore = [&]() -> int32_t {
    const bool stay_home = rng.Bernoulli(config.home_cluster_affinity);
    if (stay_home) {
      const auto& locs = world.cluster_locations[home];
      return locs[world.cluster_popularity[home].Sample(rng)];
    }
    return static_cast<int32_t>(world.global_popularity->Sample(rng));
  };
  auto next_location = [&]() -> int32_t {
    if (!distinct.empty() && rng.Bernoulli(config.return_probability)) {
      AliasSampler personal(visit_count);
      return distinct[personal.Sample(rng)];
    }
    return explore();
  };
  auto record_visit = [&](int32_t l) {
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (distinct[i] == l) {
        visit_count[i] += 1.0;
        return;
      }
    }
    distinct.push_back(l);
    visit_count.push_back(1.0);
  };

  int64_t now = config.start_timestamp +
                static_cast<int64_t>(rng.Exponential(
                    1.0 / (config.mean_hours_between_sessions * 3600.0)));
  int32_t produced = 0;
  std::vector<int32_t> session_locs;
  while (produced < target_checkins) {
    const int32_t session_len = static_cast<int32_t>(std::min<int64_t>(
        rng.UniformInt(config.session_length_min, config.session_length_max),
        target_checkins - produced));
    session_locs.clear();
    for (int32_t s = 0; s < session_len; ++s) {
      int32_t l = next_location();
      if (config.unique_within_session) {
        // Resample on a within-session repeat (bounded retries; fall back
        // to a fresh exploration draw, repeat or not, if the user's
        // personal pool is exhausted).
        for (int attempt = 0;
             attempt < 16 && std::find(session_locs.begin(),
                                       session_locs.end(),
                                       l) != session_locs.end();
             ++attempt) {
          l = attempt < 8 ? next_location() : explore();
        }
      }
      session_locs.push_back(l);
      record_visit(l);
      locations.push_back(l);
      timestamps.push_back(now);
      ++produced;
      now += static_cast<int64_t>(rng.Exponential(
          1.0 / (config.mean_minutes_between_checkins * 60.0)));
    }
    now += static_cast<int64_t>(rng.Exponential(
        1.0 / (config.mean_hours_between_sessions * 3600.0)));
  }
  return home;
}

}  // namespace

Result<CheckInDataset> GenerateSyntheticCheckIns(
    const SyntheticConfig& config, Rng& rng,
    SyntheticGroundTruth* ground_truth) {
  PLP_RETURN_IF_ERROR(ValidateConfig(config));
  const int32_t num_locations = config.num_locations;
  const World world = BuildWorld(config, rng);

  if (ground_truth != nullptr) {
    ground_truth->location_cluster = world.location_cluster;
    ground_truth->location_popularity = world.location_weight;
    ground_truth->user_home_cluster.assign(config.num_users, 0);
  }

  std::vector<CheckIn> records;
  std::vector<int32_t> locations;
  std::vector<int64_t> timestamps;
  for (int32_t u = 0; u < config.num_users; ++u) {
    const int32_t home =
        GenerateUserTrajectory(world, config, rng, locations, timestamps);
    if (ground_truth != nullptr) ground_truth->user_home_cluster[u] = home;
    for (size_t i = 0; i < locations.size(); ++i) {
      const int32_t l = locations[i];
      CheckIn c;
      c.user = u;
      c.location = l;
      c.timestamp = timestamps[i];
      c.latitude = world.location_lat[l];
      c.longitude = world.location_lon[l];
      records.push_back(c);
    }
  }

  if (ground_truth != nullptr) {
    // FromRecords densifies location ids by ascending original id, and
    // POIs that were never visited get no dense id at all. Compact the
    // ground-truth arrays the same way so they align with the dataset.
    std::vector<char> visited(static_cast<size_t>(num_locations), 0);
    for (const CheckIn& c : records) {
      visited[static_cast<size_t>(c.location)] = 1;
    }
    SyntheticGroundTruth compact;
    compact.user_home_cluster = ground_truth->user_home_cluster;
    for (int32_t l = 0; l < num_locations; ++l) {
      if (!visited[static_cast<size_t>(l)]) continue;
      compact.location_cluster.push_back(
          ground_truth->location_cluster[static_cast<size_t>(l)]);
      compact.location_popularity.push_back(
          ground_truth->location_popularity[static_cast<size_t>(l)]);
    }
    *ground_truth = std::move(compact);
  }
  return CheckInDataset::FromRecords(std::move(records));
}

Status GenerateSyntheticCheckInsToStore(const SyntheticConfig& config,
                                        Rng& rng,
                                        store::CheckInStoreWriter& writer) {
  PLP_RETURN_IF_ERROR(ValidateConfig(config));
  const World world = BuildWorld(config, rng);

  std::vector<int32_t> locations;
  std::vector<int64_t> timestamps;
  std::vector<int64_t> raw_ids;
  for (int32_t u = 0; u < config.num_users; ++u) {
    GenerateUserTrajectory(world, config, rng, locations, timestamps);
    raw_ids.assign(locations.begin(), locations.end());
    PLP_RETURN_IF_ERROR(writer.AppendUser(raw_ids, timestamps));
  }
  return Status::Ok();
}

SyntheticConfig SmallSyntheticConfig() {
  SyntheticConfig c;
  c.num_users = 500;
  c.num_locations = 400;
  c.num_clusters = 8;
  c.log_checkins_mean = 4.2;  // exp(4.2) ~ 67
  c.log_checkins_stddev = 0.8;
  c.max_checkins_per_user = 600;
  return c;
}

SyntheticConfig PaperSyntheticConfig() {
  SyntheticConfig c;
  c.num_users = 4602;
  c.num_locations = 5069;
  c.num_clusters = 16;
  // Tuned so the expected total is ~740k check-ins (the paper's corpus
  // size): 4602 * exp(4.6 + 0.9^2/2) ~ 4602 * 149 ~ 686k plus clamping.
  c.log_checkins_mean = 4.6;
  c.log_checkins_stddev = 0.9;
  return c;
}

}  // namespace plp::data
