#include "data/corpus.h"

namespace plp::data {

int64_t TrainingCorpus::num_tokens() const {
  int64_t total = 0;
  for (const auto& sentences : user_sentences) {
    for (const auto& s : sentences) total += static_cast<int64_t>(s.size());
  }
  return total;
}

Result<TrainingCorpus> BuildCorpus(const CheckInDataset& dataset,
                                   const CorpusOptions& options) {
  if (dataset.num_users() == 0) {
    return InvalidArgumentError("cannot build a corpus from an empty dataset");
  }
  TrainingCorpus corpus;
  corpus.num_locations = dataset.num_locations();
  corpus.user_sentences.resize(dataset.num_users());
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    if (options.mode == SentenceMode::kFullHistory) {
      std::vector<int32_t> sentence;
      sentence.reserve(dataset.UserCheckIns(u).size());
      for (const CheckIn& c : dataset.UserCheckIns(u)) {
        sentence.push_back(c.location);
      }
      corpus.user_sentences[u].push_back(std::move(sentence));
    } else {
      corpus.user_sentences[u] = dataset.Sessionize(
          u, options.max_session_seconds, options.max_gap_seconds);
    }
  }
  return corpus;
}

}  // namespace plp::data
