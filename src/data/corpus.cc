#include "data/corpus.h"

#include <algorithm>

#include "common/check.h"

namespace plp::data {

int64_t TrainingCorpus::num_tokens() const {
  int64_t total = 0;
  for (const auto& sentences : user_sentences) {
    for (const auto& s : sentences) total += static_cast<int64_t>(s.size());
  }
  return total;
}

void TrainingCorpus::AppendUserSentences(
    int32_t user, std::vector<std::span<const int32_t>>& out) const {
  PLP_CHECK(user >= 0 && user < num_users());
  for (const auto& s : user_sentences[static_cast<size_t>(user)]) {
    out.emplace_back(s);
  }
}

int64_t TrainingCorpus::UserTokenCount(int32_t user) const {
  PLP_CHECK(user >= 0 && user < num_users());
  int64_t total = 0;
  for (const auto& s : user_sentences[static_cast<size_t>(user)]) {
    total += static_cast<int64_t>(s.size());
  }
  return total;
}

Result<TrainingCorpus> BuildCorpus(const CheckInDataset& dataset,
                                   const CorpusOptions& options) {
  if (dataset.num_users() == 0) {
    return InvalidArgumentError("cannot build a corpus from an empty dataset");
  }
  TrainingCorpus corpus;
  corpus.num_locations = dataset.num_locations();
  corpus.user_sentences.resize(dataset.num_users());
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    if (options.mode == SentenceMode::kFullHistory) {
      std::vector<int32_t> sentence;
      sentence.reserve(dataset.UserCheckIns(u).size());
      for (const CheckIn& c : dataset.UserCheckIns(u)) {
        sentence.push_back(c.location);
      }
      corpus.user_sentences[u].push_back(std::move(sentence));
    } else {
      corpus.user_sentences[u] = dataset.Sessionize(
          u, options.max_session_seconds, options.max_gap_seconds);
    }
  }
  return corpus;
}

std::vector<int64_t> CountTokenFrequencies(const CorpusView& corpus) {
  const std::span<const int64_t> persisted = corpus.TokenFrequencies();
  if (!persisted.empty()) {
    return std::vector<int64_t>(persisted.begin(), persisted.end());
  }
  std::vector<int64_t> counts(
      static_cast<size_t>(std::max<int32_t>(corpus.NumLocations(), 0)), 0);
  std::vector<std::span<const int32_t>> sentences;
  for (int32_t u = 0; u < corpus.NumUsers(); ++u) {
    sentences.clear();
    corpus.AppendUserSentences(u, sentences);
    for (const auto& s : sentences) {
      for (int32_t token : s) {
        PLP_CHECK(token >= 0 && static_cast<size_t>(token) < counts.size());
        ++counts[static_cast<size_t>(token)];
      }
    }
  }
  return counts;
}

}  // namespace plp::data
