#ifndef PLP_DATA_CHECKIN_H_
#define PLP_DATA_CHECKIN_H_

#include <cstdint>

namespace plp::data {

/// One check-in event: the triplet <user, location, time> from Section 3.1,
/// plus the POI coordinates (used only by the generator and for inspection —
/// the learning pipeline never consumes raw coordinates).
struct CheckIn {
  int32_t user = 0;       ///< dense user id in [0, N)
  int32_t location = 0;   ///< dense location (POI) id in [0, L)
  int64_t timestamp = 0;  ///< seconds since an arbitrary epoch
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Geographic bounding box (used by the synthetic generator; defaults match
/// the paper's Tokyo study region).
struct BoundingBox {
  double south = 35.554;
  double north = 35.759;
  double west = 139.496;
  double east = 139.905;
};

}  // namespace plp::data

#endif  // PLP_DATA_CHECKIN_H_
