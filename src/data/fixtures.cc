#include "data/fixtures.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/synthetic_generator.h"

namespace plp::data {

TrainingCorpus MakeFixtureCorpus(uint64_t seed,
                                 const FixtureCorpusOptions& options) {
  PLP_CHECK_GT(options.num_users, 0);
  PLP_CHECK_GT(options.num_locations, 0);
  PLP_CHECK_GT(options.min_tokens_per_user, 0);
  PLP_CHECK_LE(options.min_tokens_per_user, options.max_tokens_per_user);
  TrainingCorpus corpus;
  corpus.num_locations = options.num_locations;
  Rng rng(seed);
  for (int32_t u = 0; u < options.num_users; ++u) {
    const int32_t len =
        options.min_tokens_per_user == options.max_tokens_per_user
            ? options.min_tokens_per_user
            : static_cast<int32_t>(rng.UniformInt(
                  int64_t{options.min_tokens_per_user},
                  int64_t{options.max_tokens_per_user}));
    int32_t base = 0;
    if (options.neighborhood > 0) {
      base = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(options.num_locations)));
    }
    std::vector<int32_t> sentence;
    sentence.reserve(static_cast<size_t>(len));
    for (int32_t i = 0; i < len; ++i) {
      if (options.neighborhood > 0) {
        sentence.push_back(
            (base + static_cast<int32_t>(rng.UniformInt(
                        static_cast<uint64_t>(options.neighborhood)))) %
            options.num_locations);
      } else {
        sentence.push_back(static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(options.num_locations))));
      }
    }
    corpus.user_sentences.push_back({std::move(sentence)});
  }
  return corpus;
}

TrainingCorpus MakeGiantUserCorpus(uint64_t seed, int32_t num_users,
                                   int32_t num_locations,
                                   int32_t giant_tokens) {
  FixtureCorpusOptions options;
  options.num_users = num_users;
  options.num_locations = num_locations;
  TrainingCorpus corpus = MakeFixtureCorpus(seed, options);
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  std::vector<int32_t> giant;
  giant.reserve(static_cast<size_t>(giant_tokens));
  for (int32_t i = 0; i < giant_tokens; ++i) {
    giant.push_back(static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(num_locations))));
  }
  corpus.user_sentences.push_back({std::move(giant)});
  return corpus;
}

Result<CheckInDataset> MakeFixtureDataset(uint64_t seed,
                                          const std::string& scale) {
  SyntheticConfig config;
  if (scale == "paper") {
    config = PaperSyntheticConfig();
  } else if (scale == "small") {
    // Many light users: the regime where user-level DP noise and data
    // grouping actually interact (see DESIGN.md).
    config = SmallSyntheticConfig();
    config.num_users = 2400;
    config.num_locations = 600;
    config.log_checkins_mean = 3.2;
    config.log_checkins_stddev = 0.6;
  } else {
    return InvalidArgumentError("unknown fixture scale: " + scale);
  }
  Rng rng(seed);
  PLP_ASSIGN_OR_RETURN(CheckInDataset dataset,
                       GenerateSyntheticCheckIns(config, rng));
  return dataset.Filter(10, 2);
}

}  // namespace plp::data
