#ifndef PLP_DATA_CORPUS_H_
#define PLP_DATA_CORPUS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace plp::data {

/// How a user's check-in history is turned into skip-gram "sentences".
enum class SentenceMode {
  /// The user's entire time-ordered history is one sentence (Section 3.2:
  /// "a user's check-in history [corresponds] to a sentence"). Default.
  kFullHistory,
  /// One sentence per six-hour session; context windows never straddle
  /// session boundaries. Available for ablation.
  kPerSession,
};

/// Read-only, user-partitioned view of tokenized training data — the
/// interface the training pipeline consumes.
///
/// Two implementations exist: the in-RAM TrainingCorpus below, and the
/// mmap-backed store::MmapCorpus (src/data/store), whose sentences are
/// zero-copy spans into an on-disk PLPD corpus. The pipeline only ever
/// reads through this interface, so a million-user corpus never has to be
/// materialized in memory; user-level DP needs exactly this partitioning —
/// Algorithm 1 samples and groups *users*, then reads their sequences.
///
/// Spans returned by AppendUserSentences alias storage owned by the view
/// and stay valid for the view's lifetime (training copies the sampled
/// users' tokens into buckets each round, so nothing outlives a step).
class CorpusView {
 public:
  virtual ~CorpusView() = default;

  virtual int32_t NumUsers() const = 0;
  virtual int32_t NumLocations() const = 0;

  /// Total number of location tokens across all users.
  virtual int64_t NumTokens() const = 0;

  /// Appends user `user`'s sentences to `out` as zero-copy spans (the
  /// vector is NOT cleared — callers batch several users into one list).
  /// Requires 0 <= user < NumUsers().
  virtual void AppendUserSentences(
      int32_t user, std::vector<std::span<const int32_t>>& out) const = 0;

  /// Number of tokens contributed by one user (the grouper's balancing
  /// weight). Requires 0 <= user < NumUsers().
  virtual int64_t UserTokenCount(int32_t user) const = 0;

  /// Per-dense-location token counts when the view already knows them
  /// (the on-disk store persists frequencies at write time); empty
  /// otherwise, in which case callers scan via AppendUserSentences. Used
  /// by the unigram negative sampler and the subsampling table so neither
  /// needs its own corpus pass.
  virtual std::span<const int64_t> TokenFrequencies() const { return {}; }
};

/// Tokenized in-RAM training input: one or more location-id sequences per
/// user. The default CorpusView for datasets that fit in memory.
struct TrainingCorpus : public CorpusView {
  /// sequences[u] = the sentences contributed by user u.
  std::vector<std::vector<std::vector<int32_t>>> user_sentences;
  int32_t num_locations = 0;

  int32_t num_users() const {
    return static_cast<int32_t>(user_sentences.size());
  }

  /// Total number of location tokens across all users.
  int64_t num_tokens() const;

  // CorpusView:
  int32_t NumUsers() const override { return num_users(); }
  int32_t NumLocations() const override { return num_locations; }
  int64_t NumTokens() const override { return num_tokens(); }
  void AppendUserSentences(
      int32_t user, std::vector<std::span<const int32_t>>& out) const override;
  int64_t UserTokenCount(int32_t user) const override;
};

/// Options for corpus construction.
struct CorpusOptions {
  SentenceMode mode = SentenceMode::kFullHistory;
  int64_t max_session_seconds = 6 * 3600;  ///< used by kPerSession
  int64_t max_gap_seconds = 6 * 3600;      ///< used by kPerSession
};

/// Builds the training corpus from a dataset. Fails on an empty dataset.
Result<TrainingCorpus> BuildCorpus(const CheckInDataset& dataset,
                                   const CorpusOptions& options = {});

/// Per-dense-location token counts of `corpus` — from the view's persisted
/// TokenFrequencies() when available, otherwise from one scan. This is the
/// single counting path shared by corpus statistics, the word2vec
/// subsampling table and the unigram negative-sampler table.
std::vector<int64_t> CountTokenFrequencies(const CorpusView& corpus);

}  // namespace plp::data

#endif  // PLP_DATA_CORPUS_H_
