#ifndef PLP_DATA_CORPUS_H_
#define PLP_DATA_CORPUS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace plp::data {

/// How a user's check-in history is turned into skip-gram "sentences".
enum class SentenceMode {
  /// The user's entire time-ordered history is one sentence (Section 3.2:
  /// "a user's check-in history [corresponds] to a sentence"). Default.
  kFullHistory,
  /// One sentence per six-hour session; context windows never straddle
  /// session boundaries. Available for ablation.
  kPerSession,
};

/// Tokenized training input: one or more location-id sequences per user.
///
/// The corpus preserves the user partitioning that user-level DP requires —
/// Algorithm 1 samples and groups *users*, then reads their sequences.
struct TrainingCorpus {
  /// sequences[u] = the sentences contributed by user u.
  std::vector<std::vector<std::vector<int32_t>>> user_sentences;
  int32_t num_locations = 0;

  int32_t num_users() const {
    return static_cast<int32_t>(user_sentences.size());
  }

  /// Total number of location tokens across all users.
  int64_t num_tokens() const;
};

/// Options for corpus construction.
struct CorpusOptions {
  SentenceMode mode = SentenceMode::kFullHistory;
  int64_t max_session_seconds = 6 * 3600;  ///< used by kPerSession
  int64_t max_gap_seconds = 6 * 3600;      ///< used by kPerSession
};

/// Builds the training corpus from a dataset. Fails on an empty dataset.
Result<TrainingCorpus> BuildCorpus(const CheckInDataset& dataset,
                                   const CorpusOptions& options = {});

}  // namespace plp::data

#endif  // PLP_DATA_CORPUS_H_
