#ifndef PLP_DATA_STORE_FORMAT_H_
#define PLP_DATA_STORE_FORMAT_H_

#include <cstdint>
#include <string>

namespace plp::data::store {

/// On-disk layout of a PLPD corpus directory.
///
/// A corpus is a directory of five kinds of files:
///
///   manifest.plpd      commit point; names every other file with its byte
///                      size and CRC-64/XZ, plus corpus totals. Written
///                      last via the atomic-rename protocol — a directory
///                      without a valid manifest is not a corpus.
///   index.plpdi        per-user locator: {shard, byte offset, count} per
///                      dense user id, in user order.
///   vocab.plpdv        sharded raw-id → dense-id location vocabulary.
///   freqs.plpdf        per-dense-location token counts (the unigram
///                      sampler's and subsampler's input — persisted so
///                      opening a corpus never needs a data scan).
///   shard-%05d.plpds   check-in record shards, mmap-ed read-only.
///
/// A shard is a 16-byte header followed by user blocks:
///
///   [i64 count][i32 location × count][pad to 8][i64 timestamp × count]
///
/// Blocks are 8-byte aligned (header is 16 bytes; each block's size is a
/// multiple of 8), so the location and timestamp arrays can be handed out
/// as zero-copy spans straight into the mapping.
inline constexpr uint32_t kManifestMagic = 0x44504C50;  // "PLPD"
inline constexpr uint32_t kIndexMagic = 0x49504C50;     // "PLPI"
inline constexpr uint32_t kVocabMagic = 0x56504C50;     // "PLPV"
inline constexpr uint32_t kFreqsMagic = 0x46504C50;     // "PLPF"
inline constexpr uint32_t kShardMagic = 0x53504C50;     // "PLPS"
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr char kManifestFile[] = "manifest.plpd";
inline constexpr char kIndexFile[] = "index.plpdi";
inline constexpr char kVocabFile[] = "vocab.plpdv";
inline constexpr char kFreqsFile[] = "freqs.plpdf";

inline constexpr int64_t kShardHeaderBytes = 16;

/// "shard-00042.plpds"
std::string ShardFileName(int32_t shard);

/// One per-user entry of index.plpdi (serialized as u32 + u32 pad +
/// i64 + i64 = 24 bytes; `offset` points at the block's i64 count field).
struct UserIndexEntry {
  uint32_t shard = 0;
  int64_t offset = 0;
  int64_t count = 0;
};

/// Size/checksum of one corpus file as recorded in the manifest.
struct FileDigest {
  int64_t size = 0;
  uint64_t crc64 = 0;
};

/// Bytes a user block occupies inside a shard: count field + padded
/// locations + timestamps.
inline int64_t UserBlockBytes(int64_t count) {
  const int64_t locations = 4 * count;
  const int64_t padded = (locations + 7) / 8 * 8;
  return 8 + padded + 8 * count;
}

}  // namespace plp::data::store

#endif  // PLP_DATA_STORE_FORMAT_H_
