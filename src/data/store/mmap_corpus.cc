#include "data/store/mmap_corpus.h"

#include <utility>

#include "common/check.h"

namespace plp::data::store {

MmapCorpus::MmapCorpus(std::shared_ptr<const CheckInStore> store)
    : MmapCorpus(std::move(store), 0, 0) {
  end_ = store_->num_users();
}

MmapCorpus::MmapCorpus(std::shared_ptr<const CheckInStore> store,
                       int32_t begin, int32_t end)
    : store_(std::move(store)), begin_(begin), end_(end) {
  PLP_CHECK(store_ != nullptr);
  PLP_CHECK(begin_ >= 0 && begin_ <= end_ && end_ <= store_->num_users());
}

int64_t MmapCorpus::NumTokens() const {
  if (begin_ == 0 && end_ == store_->num_users()) {
    return store_->num_tokens();
  }
  int64_t total = 0;
  for (int32_t u = begin_; u < end_; ++u) total += store_->UserTokenCount(u);
  return total;
}

void MmapCorpus::AppendUserSentences(
    int32_t user, std::vector<std::span<const int32_t>>& out) const {
  PLP_CHECK(user >= 0 && user < NumUsers());
  out.push_back(store_->User(begin_ + user).locations);
}

int64_t MmapCorpus::UserTokenCount(int32_t user) const {
  PLP_CHECK(user >= 0 && user < NumUsers());
  return store_->UserTokenCount(begin_ + user);
}

}  // namespace plp::data::store
