#include "data/store/checkin_store.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/serialize.h"

namespace plp::data::store {
namespace {

Status CollectViolations(const std::string& dir,
                         const std::vector<std::string>& violations) {
  if (violations.empty()) return Status::Ok();
  std::string message = "corrupt PLPD corpus in " + dir + ": ";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) message += "; ";
    message += violations[i];
  }
  return InvalidArgumentError(std::move(message));
}

/// Streams a file through the CRC in 1 MiB chunks — O(1) resident memory
/// regardless of shard size (mmap-touching every page would charge the
/// whole file to RSS on first read).
Result<FileDigest> DigestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("missing file");
  std::string buffer(1 << 20, '\0');
  FileDigest digest;
  uint64_t crc = Crc64Init();
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    crc = Crc64Update(crc,
                      std::string_view(buffer.data(), static_cast<size_t>(got)));
    digest.size += got;
  }
  digest.crc64 = Crc64Finish(crc);
  return digest;
}

/// Reads `file` fully, checking size and CRC against the manifest digest.
/// Appends violations instead of failing so the caller reports them all.
bool LoadVerified(const std::string& dir, const std::string& file,
                  const FileDigest& expected,
                  std::vector<std::string>& violations, std::string& out) {
  Result<std::string> contents = ReadFileToString(dir + "/" + file);
  if (!contents.ok()) {
    violations.push_back(file + ": missing");
    return false;
  }
  if (static_cast<int64_t>(contents->size()) != expected.size) {
    violations.push_back(file + ": size " + std::to_string(contents->size()) +
                         " != manifest " + std::to_string(expected.size));
    return false;
  }
  if (Crc64(*contents) != expected.crc64) {
    violations.push_back(file + ": checksum mismatch");
    return false;
  }
  out = *std::move(contents);
  return true;
}

}  // namespace

Result<std::shared_ptr<const CheckInStore>> CheckInStore::Open(
    const std::string& dir, const StoreOpenOptions& options) {
  // The manifest is the commit point: without a valid one this is not a
  // corpus, so manifest problems fail immediately rather than collecting.
  Result<std::string> manifest_bytes =
      ReadFileToString(dir + "/" + std::string(kManifestFile));
  if (!manifest_bytes.ok()) {
    return NotFoundError("not a PLPD corpus (no " +
                         std::string(kManifestFile) + " in " + dir + ")");
  }
  if (manifest_bytes->size() < 8) {
    return InvalidArgumentError("corrupt PLPD manifest in " + dir +
                                ": truncated");
  }
  const std::string_view body(manifest_bytes->data(),
                              manifest_bytes->size() - 8);
  ByteReader crc_reader(
      std::string_view(*manifest_bytes).substr(manifest_bytes->size() - 8));
  PLP_ASSIGN_OR_RETURN(const uint64_t manifest_crc, crc_reader.U64());
  if (Crc64(body) != manifest_crc) {
    return InvalidArgumentError("corrupt PLPD manifest in " + dir +
                                ": checksum mismatch");
  }

  ByteReader reader(body);
  PLP_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  PLP_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (magic != kManifestMagic) {
    return InvalidArgumentError("corrupt PLPD manifest in " + dir +
                                ": bad magic");
  }
  if (version != kFormatVersion) {
    return InvalidArgumentError("unsupported PLPD version " +
                                std::to_string(version) + " in " + dir);
  }
  auto store = std::shared_ptr<CheckInStore>(new CheckInStore());
  PLP_ASSIGN_OR_RETURN(store->num_users_, reader.I32());
  PLP_ASSIGN_OR_RETURN(store->num_locations_, reader.I32());
  PLP_ASSIGN_OR_RETURN(store->num_tokens_, reader.I64());
  PLP_ASSIGN_OR_RETURN(const uint32_t num_shards, reader.U32());
  PLP_ASSIGN_OR_RETURN(const uint32_t num_vocab_shards, reader.U32());
  if (store->num_users_ < 0 || store->num_locations_ < 0 ||
      store->num_tokens_ < 0 || num_shards > (1u << 20) ||
      num_vocab_shards == 0) {
    return InvalidArgumentError("corrupt PLPD manifest in " + dir +
                                ": implausible totals");
  }
  FileDigest index_digest, vocab_digest, freqs_digest;
  const auto read_digest = [&reader](FileDigest& d) -> Status {
    PLP_ASSIGN_OR_RETURN(d.size, reader.I64());
    PLP_ASSIGN_OR_RETURN(d.crc64, reader.U64());
    if (d.size < 0) return InvalidArgumentError("negative file size");
    return Status::Ok();
  };
  PLP_RETURN_IF_ERROR(read_digest(index_digest));
  PLP_RETURN_IF_ERROR(read_digest(vocab_digest));
  PLP_RETURN_IF_ERROR(read_digest(freqs_digest));
  std::vector<FileDigest> shard_digests(num_shards);
  for (FileDigest& d : shard_digests) PLP_RETURN_IF_ERROR(read_digest(d));
  if (!reader.AtEnd()) {
    return InvalidArgumentError("corrupt PLPD manifest in " + dir +
                                ": trailing bytes");
  }

  // From here on, collect every violation so one Open reports everything
  // wrong with the corpus at once.
  std::vector<std::string> violations;

  std::string index_bytes, vocab_bytes, freqs_bytes;
  const bool index_ok =
      LoadVerified(dir, kIndexFile, index_digest, violations, index_bytes);
  const bool vocab_ok =
      LoadVerified(dir, kVocabFile, vocab_digest, violations, vocab_bytes);
  const bool freqs_ok =
      LoadVerified(dir, kFreqsFile, freqs_digest, violations, freqs_bytes);

  for (uint32_t s = 0; s < num_shards; ++s) {
    const std::string name = ShardFileName(static_cast<int32_t>(s));
    if (options.verify_shard_checksums) {
      Result<FileDigest> actual = DigestFile(dir + "/" + name);
      if (!actual.ok()) {
        violations.push_back(name + ": missing");
      } else if (actual->size != shard_digests[s].size) {
        violations.push_back(name + ": size " + std::to_string(actual->size) +
                             " != manifest " +
                             std::to_string(shard_digests[s].size));
      } else if (actual->crc64 != shard_digests[s].crc64) {
        violations.push_back(name + ": checksum mismatch");
      }
    }
    Result<MmapFile> mapped = MmapFile::Open(dir + "/" + name);
    if (!mapped.ok()) {
      if (options.verify_shard_checksums) continue;  // already reported
      violations.push_back(name + ": " + mapped.status().message());
      continue;
    }
    if (static_cast<int64_t>(mapped->size()) != shard_digests[s].size) {
      if (!options.verify_shard_checksums) {
        violations.push_back(name + ": size " +
                             std::to_string(mapped->size()) + " != manifest " +
                             std::to_string(shard_digests[s].size));
      }
      continue;
    }
    store->shards_.push_back(std::move(mapped).value());
  }
  if (store->shards_.size() == num_shards) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      const MmapFile& shard = store->shards_[s];
      if (shard.size() < static_cast<size_t>(kShardHeaderBytes)) {
        violations.push_back(ShardFileName(static_cast<int32_t>(s)) +
                             ": shorter than header");
        continue;
      }
      ByteReader header(shard.view().substr(0, kShardHeaderBytes));
      const auto magic_result = header.U32();
      const auto id_result = header.U32();
      if (!magic_result.ok() || *magic_result != kShardMagic ||
          !id_result.ok() || *id_result != s) {
        violations.push_back(ShardFileName(static_cast<int32_t>(s)) +
                             ": bad shard header");
      }
    }
  }

  // index.plpdi → per-user entries, bounds-checked against shard sizes
  // (pure index arithmetic; record pages stay untouched).
  if (index_ok) {
    ByteReader index(index_bytes);
    const auto magic_r = index.U32();
    const auto version_r = index.U32();
    const auto users_r = index.I32();
    if (!magic_r.ok() || *magic_r != kIndexMagic || !version_r.ok() ||
        *version_r != kFormatVersion || !users_r.ok() ||
        *users_r != store->num_users_) {
      violations.push_back(std::string(kIndexFile) + ": bad header");
    } else {
      store->index_.reserve(static_cast<size_t>(store->num_users_));
      int64_t total_tokens = 0;
      for (int32_t u = 0; u < store->num_users_; ++u) {
        UserIndexEntry entry;
        const auto shard_r = index.U32();
        const auto pad_r = index.U32();
        const auto offset_r = index.I64();
        const auto count_r = index.I64();
        if (!shard_r.ok() || !pad_r.ok() || !offset_r.ok() || !count_r.ok()) {
          violations.push_back(std::string(kIndexFile) + ": truncated at user " +
                               std::to_string(u));
          break;
        }
        entry.shard = *shard_r;
        entry.offset = *offset_r;
        entry.count = *count_r;
        const bool shard_known = entry.shard < store->shards_.size();
        const int64_t shard_size =
            shard_known
                ? static_cast<int64_t>(store->shards_[entry.shard].size())
                : 0;
        if (entry.shard >= num_shards || entry.count < 0 ||
            entry.offset < kShardHeaderBytes || entry.offset % 8 != 0 ||
            (shard_known &&
             entry.offset + UserBlockBytes(entry.count) > shard_size)) {
          violations.push_back(std::string(kIndexFile) + ": user " +
                               std::to_string(u) + " entry out of bounds");
          break;
        }
        total_tokens += entry.count;
        store->index_.push_back(entry);
      }
      if (static_cast<int32_t>(store->index_.size()) == store->num_users_) {
        if (!index.AtEnd()) {
          violations.push_back(std::string(kIndexFile) + ": trailing bytes");
        }
        if (total_tokens != store->num_tokens_) {
          violations.push_back(std::string(kIndexFile) +
                               ": token total disagrees with manifest");
        }
      }
    }
  }

  // vocab.plpdv → raw→dense map; dense ids must form 0..L-1 exactly.
  if (vocab_ok) {
    ByteReader vocab(vocab_bytes);
    const auto magic_r = vocab.U32();
    const auto version_r = vocab.U32();
    const auto shards_r = vocab.U32();
    const auto locations_r = vocab.I32();
    if (!magic_r.ok() || *magic_r != kVocabMagic || !version_r.ok() ||
        *version_r != kFormatVersion || !shards_r.ok() ||
        *shards_r != num_vocab_shards || !locations_r.ok() ||
        *locations_r != store->num_locations_) {
      violations.push_back(std::string(kVocabFile) + ": bad header");
    } else {
      std::vector<char> seen(static_cast<size_t>(store->num_locations_), 0);
      bool valid = true;
      store->raw_to_dense_.reserve(
          static_cast<size_t>(store->num_locations_));
      for (uint32_t s = 0; valid && s < num_vocab_shards; ++s) {
        const auto shard_id_r = vocab.U32();
        const auto entries_r = vocab.U32();
        if (!shard_id_r.ok() || *shard_id_r != s || !entries_r.ok()) {
          violations.push_back(std::string(kVocabFile) + ": bad shard " +
                               std::to_string(s));
          valid = false;
          break;
        }
        for (uint32_t e = 0; e < *entries_r; ++e) {
          const auto raw_r = vocab.I64();
          const auto dense_r = vocab.I32();
          if (!raw_r.ok() || !dense_r.ok() || *dense_r < 0 ||
              *dense_r >= store->num_locations_ ||
              seen[static_cast<size_t>(*dense_r)] ||
              !store->raw_to_dense_.emplace(*raw_r, *dense_r).second) {
            violations.push_back(std::string(kVocabFile) +
                                 ": invalid entry in shard " +
                                 std::to_string(s));
            valid = false;
            break;
          }
          seen[static_cast<size_t>(*dense_r)] = 1;
        }
      }
      if (valid &&
          (static_cast<int32_t>(store->raw_to_dense_.size()) !=
               store->num_locations_ ||
           !vocab.AtEnd())) {
        violations.push_back(std::string(kVocabFile) +
                             ": entry count disagrees with manifest");
      }
    }
  }

  // freqs.plpdf → per-location counts; their sum must equal num_tokens.
  if (freqs_ok) {
    ByteReader freqs(freqs_bytes);
    const auto magic_r = freqs.U32();
    const auto version_r = freqs.U32();
    const auto locations_r = freqs.I32();
    if (!magic_r.ok() || *magic_r != kFreqsMagic || !version_r.ok() ||
        *version_r != kFormatVersion || !locations_r.ok() ||
        *locations_r != store->num_locations_) {
      violations.push_back(std::string(kFreqsFile) + ": bad header");
    } else {
      store->frequencies_.reserve(
          static_cast<size_t>(store->num_locations_));
      int64_t total = 0;
      bool valid = true;
      for (int32_t l = 0; l < store->num_locations_; ++l) {
        const auto count_r = freqs.I64();
        if (!count_r.ok() || *count_r < 0) {
          violations.push_back(std::string(kFreqsFile) + ": truncated");
          valid = false;
          break;
        }
        total += *count_r;
        store->frequencies_.push_back(*count_r);
      }
      if (valid && (!freqs.AtEnd() || total != store->num_tokens_)) {
        violations.push_back(std::string(kFreqsFile) +
                             ": counts disagree with manifest token total");
      }
    }
  }

  PLP_RETURN_IF_ERROR(CollectViolations(dir, violations));
  if (store->shards_.size() != num_shards ||
      static_cast<int32_t>(store->index_.size()) != store->num_users_) {
    return InternalError("PLPD open failed without a recorded violation");
  }
  return std::shared_ptr<const CheckInStore>(std::move(store));
}

CheckInStore::UserSpan CheckInStore::User(int32_t user) const {
  PLP_CHECK(user >= 0 && user < num_users_);
  const UserIndexEntry& entry = index_[static_cast<size_t>(user)];
  const char* base = shards_[entry.shard].data() + entry.offset;
  // The block's own count is the one integrity field the open-time scan
  // leaves to access time (checking it eagerly would page in every shard).
  PLP_CHECK_EQ(*reinterpret_cast<const int64_t*>(base), entry.count);
  const size_t count = static_cast<size_t>(entry.count);
  UserSpan span;
  span.locations = {reinterpret_cast<const int32_t*>(base + 8), count};
  const int64_t padded = (4 * entry.count + 7) / 8 * 8;
  span.timestamps = {reinterpret_cast<const int64_t*>(base + 8 + padded),
                     count};
  return span;
}

int64_t CheckInStore::UserTokenCount(int32_t user) const {
  PLP_CHECK(user >= 0 && user < num_users_);
  return index_[static_cast<size_t>(user)].count;
}

int32_t CheckInStore::DenseLocation(int64_t raw_id) const {
  const auto it = raw_to_dense_.find(raw_id);
  return it == raw_to_dense_.end() ? -1 : it->second;
}

}  // namespace plp::data::store
