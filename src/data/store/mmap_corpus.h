#ifndef PLP_DATA_STORE_MMAP_CORPUS_H_
#define PLP_DATA_STORE_MMAP_CORPUS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/corpus.h"
#include "data/store/checkin_store.h"

namespace plp::data::store {

/// CorpusView over an open PLPD store: each user's full check-in history
/// is one sentence (SentenceMode::kFullHistory), materialized as a
/// zero-copy span into the mapping. This is the view the training
/// pipeline consumes for on-disk corpora — Algorithm 1 samples users,
/// reads their sequences, and never needs the corpus in RAM.
///
/// An optional contiguous user range restricts the view (for train /
/// holdout splits); users are renumbered to [0, end - begin) while the
/// location vocabulary stays global.
class MmapCorpus : public data::CorpusView {
 public:
  explicit MmapCorpus(std::shared_ptr<const CheckInStore> store);

  /// View of users [begin, end). Requires 0 <= begin <= end <=
  /// store->num_users().
  MmapCorpus(std::shared_ptr<const CheckInStore> store, int32_t begin,
             int32_t end);

  int32_t NumUsers() const override { return end_ - begin_; }
  int32_t NumLocations() const override { return store_->num_locations(); }
  int64_t NumTokens() const override;
  void AppendUserSentences(
      int32_t user, std::vector<std::span<const int32_t>>& out) const override;
  int64_t UserTokenCount(int32_t user) const override;

  /// Persisted frequencies — valid for the whole store, which is exact
  /// when the view spans every user and an upper envelope otherwise
  /// (samplers only need relative weights, and a global table keeps the
  /// negative distribution identical across splits).
  std::span<const int64_t> TokenFrequencies() const override {
    return store_->token_frequencies();
  }

  const CheckInStore& store() const { return *store_; }

 private:
  std::shared_ptr<const CheckInStore> store_;
  int32_t begin_ = 0;
  int32_t end_ = 0;
};

}  // namespace plp::data::store

#endif  // PLP_DATA_STORE_MMAP_CORPUS_H_
