#include "data/store/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace plp::data::store {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return InternalError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return InternalError("fstat " + path + ": " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* mapped = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return InternalError("mmap " + path + ": " + std::strerror(err));
    }
    file.data_ = static_cast<const char*>(mapped);
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace plp::data::store
