#ifndef PLP_DATA_STORE_CHECKIN_STORE_H_
#define PLP_DATA_STORE_CHECKIN_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/store/format.h"
#include "data/store/mmap_file.h"

namespace plp::data::store {

/// Open-time integrity options.
struct StoreOpenOptions {
  /// Verify every record shard's CRC-64 against the manifest with a
  /// chunked streaming read (bounded RSS, but it reads every byte once).
  /// The index, vocabulary and frequency files are always verified — they
  /// are read fully anyway. Disable only for sources that were verified
  /// out of band.
  bool verify_shard_checksums = true;
};

/// Read-only mmap-backed view of a PLPD corpus directory (see format.h).
///
/// Open() validates the manifest, checks every file's size and checksum
/// (collecting ALL violations into one status, so a corrupt corpus
/// reports everything wrong with it at once), bounds-checks the per-user
/// index against shard sizes, and maps the shards. After that, reading a
/// user's check-ins is two pointer additions — the spans point straight
/// into the mapping and no check-in is ever copied into the heap.
///
/// Resident cost is O(users + locations) for the index, vocabulary and
/// frequency table; record bytes are paged in by the kernel on demand.
/// Spans stay valid for the store's lifetime.
class CheckInStore {
 public:
  struct UserSpan {
    std::span<const int32_t> locations;   ///< dense ids, time-ordered
    std::span<const int64_t> timestamps;  ///< seconds, same length
  };

  static Result<std::shared_ptr<const CheckInStore>> Open(
      const std::string& dir, const StoreOpenOptions& options = {});

  int32_t num_users() const { return num_users_; }
  int32_t num_locations() const { return num_locations_; }
  int64_t num_tokens() const { return num_tokens_; }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  /// Zero-copy view of one user's check-ins. Requires 0 <= user <
  /// num_users().
  UserSpan User(int32_t user) const;

  /// Token count of one user without touching record pages.
  int64_t UserTokenCount(int32_t user) const;

  /// Per-dense-location token counts persisted at write time.
  std::span<const int64_t> token_frequencies() const { return frequencies_; }

  /// Dense id of a raw location id, or -1 when absent from the vocabulary.
  int32_t DenseLocation(int64_t raw_id) const;

 private:
  CheckInStore() = default;

  int32_t num_users_ = 0;
  int32_t num_locations_ = 0;
  int64_t num_tokens_ = 0;
  std::vector<UserIndexEntry> index_;
  std::vector<int64_t> frequencies_;
  std::unordered_map<int64_t, int32_t> raw_to_dense_;
  std::vector<MmapFile> shards_;
};

}  // namespace plp::data::store

#endif  // PLP_DATA_STORE_CHECKIN_STORE_H_
