#ifndef PLP_DATA_STORE_MMAP_FILE_H_
#define PLP_DATA_STORE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace plp::data::store {

/// Read-only memory mapping of a whole file (RAII: unmapped on
/// destruction). Movable, not copyable. The kernel pages data in on
/// demand and may evict it under pressure, which is exactly the property
/// the million-user store relies on: opening a corpus costs address
/// space, not resident memory.
class MmapFile {
 public:
  /// Maps `path` read-only. Fails with NotFound when the file does not
  /// exist. Zero-length files map successfully with data() == nullptr.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace plp::data::store

#endif  // PLP_DATA_STORE_MMAP_FILE_H_
