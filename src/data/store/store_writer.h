#ifndef PLP_DATA_STORE_STORE_WRITER_H_
#define PLP_DATA_STORE_STORE_WRITER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/store/format.h"

namespace plp::data::store {

/// Raw-location-id → dense-id vocabulary, hash-sharded so lookups at
/// 10^5–10^6 POIs touch one small map instead of one giant one and so
/// the on-disk serialization is naturally partitioned. Dense ids are
/// assigned in first-appearance order and are stable: re-ingesting the
/// same stream yields the same assignment.
class LocationVocab {
 public:
  explicit LocationVocab(int32_t num_shards = 16);

  /// Returns the dense id of `raw_id`, assigning the next free dense id
  /// on first appearance.
  int32_t Assign(int64_t raw_id);

  /// Returns the dense id of `raw_id`, or -1 when never assigned.
  int32_t Lookup(int64_t raw_id) const;

  int32_t size() const { return next_dense_; }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  /// All (raw, dense) pairs of one hash shard, unordered.
  const std::unordered_map<int64_t, int32_t>& Shard(int32_t shard) const {
    return shards_[static_cast<size_t>(shard)];
  }

  /// The shard `raw_id` hashes to.
  int32_t ShardOf(int64_t raw_id) const;

 private:
  std::vector<std::unordered_map<int64_t, int32_t>> shards_;
  int32_t next_dense_ = 0;
};

/// Writer tuning knobs.
struct StoreWriterOptions {
  /// A new record shard is started once the current one exceeds this.
  int64_t target_shard_bytes = 64ll << 20;
  int32_t num_vocab_shards = 16;
};

/// Streaming writer of a PLPD corpus directory. Users are appended one at
/// a time and flow straight to the current record shard — resident memory
/// is O(users + locations) for the index, vocabulary and frequency table,
/// never O(check-ins), so a million-user corpus can be generated in
/// bounded RSS.
///
/// Durability: each finished shard is committed via write-to-temp + fsync
/// + rename + directory fsync; the manifest (which names every file with
/// its CRC-64) is written last through the same protocol and is the
/// commit point. A crash mid-write leaves either a previous complete
/// corpus or no manifest at all — never a torn corpus that opens.
class CheckInStoreWriter {
 public:
  /// Creates `dir` (and parents) and starts a fresh corpus in it.
  static Result<std::unique_ptr<CheckInStoreWriter>> Create(
      const std::string& dir, const StoreWriterOptions& options = {});

  ~CheckInStoreWriter();
  CheckInStoreWriter(const CheckInStoreWriter&) = delete;
  CheckInStoreWriter& operator=(const CheckInStoreWriter&) = delete;

  /// Pre-assigns dense ids 0..num_locations-1 to raw ids 0..num_locations-1.
  /// For sources that are already densely tokenized (a CheckInDataset, the
  /// synthetic generator) this makes store tokens bit-identical to source
  /// tokens. Must be called before any append.
  void PreRegisterVocab(int32_t num_locations);

  /// Appends one user's time-ordered check-ins, mapping raw location ids
  /// through the vocabulary. The user's dense id is the append ordinal.
  Status AppendUser(std::span<const int64_t> raw_locations,
                    std::span<const int64_t> timestamps);

  /// Appends one user whose locations are already dense vocabulary ids
  /// (each id must have been assigned, e.g. via PreRegisterVocab).
  Status AppendUserDense(std::span<const int32_t> locations,
                         std::span<const int64_t> timestamps);

  int32_t users_appended() const {
    return static_cast<int32_t>(index_.size());
  }
  int64_t tokens_appended() const { return num_tokens_; }
  int32_t vocab_size() const { return vocab_.size(); }

  /// Commits the corpus: final shard, index, vocabulary, frequency table,
  /// then the manifest. The writer is unusable afterwards.
  Status Finish();

 private:
  CheckInStoreWriter(std::string dir, StoreWriterOptions options);

  Status StartShardIfNeeded();
  Status CommitCurrentShard();
  Status WriteBlob(const std::string& file_name, const std::string& contents,
                   FileDigest& digest);

  std::string dir_;
  StoreWriterOptions options_;
  LocationVocab vocab_;
  std::vector<int64_t> frequencies_;
  std::vector<UserIndexEntry> index_;
  std::vector<FileDigest> shard_digests_;
  int64_t num_tokens_ = 0;

  // Current shard stream state.
  int fd_ = -1;
  std::string temp_path_;
  int64_t shard_bytes_ = 0;
  uint64_t shard_crc_ = 0;
  bool finished_ = false;
};

/// Writes an in-memory dataset to a PLPD directory. The identity
/// vocabulary is pre-registered, so store tokens equal the dataset's
/// dense location ids and training on either representation is
/// bit-identical.
Status WriteDatasetToStore(const CheckInDataset& dataset,
                           const std::string& dir,
                           const StoreWriterOptions& options = {});

}  // namespace plp::data::store

#endif  // PLP_DATA_STORE_STORE_WRITER_H_
