#include "data/store/format.h"

#include <cstdio>

namespace plp::data::store {

std::string ShardFileName(int32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05d.plpds", shard);
  return buf;
}

}  // namespace plp::data::store
