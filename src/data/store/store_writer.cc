#include "data/store/store_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/serialize.h"

namespace plp::data::store {
namespace {

/// SplitMix64 finalizer: decorrelates raw ids before sharding so
/// sequential id ranges spread across vocabulary shards.
uint64_t MixId(int64_t raw_id) {
  uint64_t z = static_cast<uint64_t>(raw_id) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError("write " + path + ": " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return InternalError("open dir " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return InternalError("fsync dir " + dir + ": " + std::strerror(err));
  }
  return Status::Ok();
}

}  // namespace

LocationVocab::LocationVocab(int32_t num_shards) {
  PLP_CHECK(num_shards > 0);
  shards_.resize(static_cast<size_t>(num_shards));
}

int32_t LocationVocab::ShardOf(int64_t raw_id) const {
  return static_cast<int32_t>(MixId(raw_id) % shards_.size());
}

int32_t LocationVocab::Assign(int64_t raw_id) {
  auto& shard = shards_[static_cast<size_t>(ShardOf(raw_id))];
  const auto [it, inserted] = shard.try_emplace(raw_id, next_dense_);
  if (inserted) ++next_dense_;
  return it->second;
}

int32_t LocationVocab::Lookup(int64_t raw_id) const {
  const auto& shard = shards_[static_cast<size_t>(ShardOf(raw_id))];
  const auto it = shard.find(raw_id);
  return it == shard.end() ? -1 : it->second;
}

CheckInStoreWriter::CheckInStoreWriter(std::string dir,
                                       StoreWriterOptions options)
    : dir_(std::move(dir)),
      options_(options),
      vocab_(options.num_vocab_shards) {}

CheckInStoreWriter::~CheckInStoreWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(temp_path_.c_str());
  }
}

Result<std::unique_ptr<CheckInStoreWriter>> CheckInStoreWriter::Create(
    const std::string& dir, const StoreWriterOptions& options) {
  if (options.target_shard_bytes <= 0) {
    return InvalidArgumentError("target_shard_bytes must be > 0");
  }
  if (options.num_vocab_shards <= 0) {
    return InvalidArgumentError("num_vocab_shards must be > 0");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return InternalError("create corpus dir " + dir + ": " + ec.message());
  }
  return std::unique_ptr<CheckInStoreWriter>(
      new CheckInStoreWriter(dir, options));
}

void CheckInStoreWriter::PreRegisterVocab(int32_t num_locations) {
  PLP_CHECK(index_.empty());
  for (int32_t l = 0; l < num_locations; ++l) {
    const int32_t dense = vocab_.Assign(l);
    PLP_CHECK_EQ(dense, l);
  }
  frequencies_.resize(static_cast<size_t>(vocab_.size()), 0);
}

Status CheckInStoreWriter::StartShardIfNeeded() {
  if (fd_ >= 0) return Status::Ok();
  const int32_t shard = static_cast<int32_t>(shard_digests_.size());
  temp_path_ = dir_ + "/" + ShardFileName(shard) +
               std::string(kAtomicTempInfix) + std::to_string(::getpid());
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return InternalError("open " + temp_path_ + ": " + std::strerror(errno));
  }
  ByteWriter header;
  header.U32(kShardMagic);
  header.U32(static_cast<uint32_t>(shard));
  header.U64(0);  // reserved
  PLP_RETURN_IF_ERROR(
      WriteAll(fd_, header.str().data(), header.size(), temp_path_));
  shard_crc_ = Crc64Update(Crc64Init(), header.str());
  shard_bytes_ = kShardHeaderBytes;
  return Status::Ok();
}

Status CheckInStoreWriter::AppendUserDense(std::span<const int32_t> locations,
                                           std::span<const int64_t> timestamps) {
  if (finished_) return FailedPreconditionError("writer already finished");
  if (locations.size() != timestamps.size()) {
    return InvalidArgumentError("locations/timestamps size mismatch");
  }
  if (frequencies_.size() < static_cast<size_t>(vocab_.size())) {
    frequencies_.resize(static_cast<size_t>(vocab_.size()), 0);
  }
  for (const int32_t l : locations) {
    if (l < 0 || l >= vocab_.size()) {
      return InvalidArgumentError("location id " + std::to_string(l) +
                                  " outside vocabulary of size " +
                                  std::to_string(vocab_.size()));
    }
    ++frequencies_[static_cast<size_t>(l)];
  }
  PLP_RETURN_IF_ERROR(StartShardIfNeeded());

  const int64_t count = static_cast<int64_t>(locations.size());
  ByteWriter block;
  block.I64(count);
  for (const int32_t l : locations) block.I32(l);
  while (block.size() % 8 != 0) block.U8(0);
  for (const int64_t t : timestamps) block.I64(t);
  PLP_CHECK_EQ(static_cast<int64_t>(block.size()), UserBlockBytes(count));
  PLP_RETURN_IF_ERROR(
      WriteAll(fd_, block.str().data(), block.size(), temp_path_));

  UserIndexEntry entry;
  entry.shard = static_cast<uint32_t>(shard_digests_.size());
  entry.offset = shard_bytes_;
  entry.count = count;
  index_.push_back(entry);
  shard_crc_ = Crc64Update(shard_crc_, block.str());
  shard_bytes_ += static_cast<int64_t>(block.size());
  num_tokens_ += count;

  if (shard_bytes_ >= options_.target_shard_bytes) {
    return CommitCurrentShard();
  }
  return Status::Ok();
}

Status CheckInStoreWriter::AppendUser(std::span<const int64_t> raw_locations,
                                      std::span<const int64_t> timestamps) {
  std::vector<int32_t> dense;
  dense.reserve(raw_locations.size());
  for (const int64_t raw : raw_locations) dense.push_back(vocab_.Assign(raw));
  return AppendUserDense(dense, timestamps);
}

Status CheckInStoreWriter::CommitCurrentShard() {
  PLP_CHECK(fd_ >= 0);
  if (::fsync(fd_) != 0) {
    const Status status =
        InternalError("fsync " + temp_path_ + ": " + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  ::close(fd_);
  fd_ = -1;
  const std::string final_path =
      dir_ + "/" + ShardFileName(static_cast<int32_t>(shard_digests_.size()));
  if (::rename(temp_path_.c_str(), final_path.c_str()) != 0) {
    return InternalError("rename " + temp_path_ + " -> " + final_path + ": " +
                         std::strerror(errno));
  }
  PLP_RETURN_IF_ERROR(FsyncDir(dir_));
  FileDigest digest;
  digest.size = shard_bytes_;
  digest.crc64 = Crc64Finish(shard_crc_);
  shard_digests_.push_back(digest);
  return Status::Ok();
}

Status CheckInStoreWriter::WriteBlob(const std::string& file_name,
                                     const std::string& contents,
                                     FileDigest& digest) {
  PLP_RETURN_IF_ERROR(AtomicWriteFile(dir_ + "/" + file_name, contents));
  digest.size = static_cast<int64_t>(contents.size());
  digest.crc64 = Crc64(contents);
  return Status::Ok();
}

Status CheckInStoreWriter::Finish() {
  if (finished_) return FailedPreconditionError("writer already finished");
  if (fd_ >= 0) {
    PLP_RETURN_IF_ERROR(CommitCurrentShard());
  }
  finished_ = true;
  if (frequencies_.size() < static_cast<size_t>(vocab_.size())) {
    frequencies_.resize(static_cast<size_t>(vocab_.size()), 0);
  }

  // index.plpdi
  ByteWriter index;
  index.U32(kIndexMagic);
  index.U32(kFormatVersion);
  index.I32(static_cast<int32_t>(index_.size()));
  for (const UserIndexEntry& e : index_) {
    index.U32(e.shard);
    index.U32(0);  // pad
    index.I64(e.offset);
    index.I64(e.count);
  }
  FileDigest index_digest;
  PLP_RETURN_IF_ERROR(WriteBlob(kIndexFile, index.str(), index_digest));

  // vocab.plpdv — entries within a shard sorted by dense id so the bytes
  // do not depend on hash-map iteration order.
  ByteWriter vocab;
  vocab.U32(kVocabMagic);
  vocab.U32(kFormatVersion);
  vocab.U32(static_cast<uint32_t>(vocab_.num_shards()));
  vocab.I32(vocab_.size());
  std::vector<std::pair<int32_t, int64_t>> entries;  // (dense, raw)
  for (int32_t s = 0; s < vocab_.num_shards(); ++s) {
    entries.clear();
    for (const auto& [raw, dense] : vocab_.Shard(s)) {
      entries.emplace_back(dense, raw);
    }
    std::sort(entries.begin(), entries.end());
    vocab.U32(static_cast<uint32_t>(s));
    vocab.U32(static_cast<uint32_t>(entries.size()));
    for (const auto& [dense, raw] : entries) {
      vocab.I64(raw);
      vocab.I32(dense);
    }
  }
  FileDigest vocab_digest;
  PLP_RETURN_IF_ERROR(WriteBlob(kVocabFile, vocab.str(), vocab_digest));

  // freqs.plpdf
  ByteWriter freqs;
  freqs.U32(kFreqsMagic);
  freqs.U32(kFormatVersion);
  freqs.I32(vocab_.size());
  for (const int64_t f : frequencies_) freqs.I64(f);
  FileDigest freqs_digest;
  PLP_RETURN_IF_ERROR(WriteBlob(kFreqsFile, freqs.str(), freqs_digest));

  // manifest.plpd — the commit point, written last.
  ByteWriter manifest;
  manifest.U32(kManifestMagic);
  manifest.U32(kFormatVersion);
  manifest.I32(static_cast<int32_t>(index_.size()));
  manifest.I32(vocab_.size());
  manifest.I64(num_tokens_);
  manifest.U32(static_cast<uint32_t>(shard_digests_.size()));
  manifest.U32(static_cast<uint32_t>(vocab_.num_shards()));
  const auto put_digest = [&manifest](const FileDigest& d) {
    manifest.I64(d.size);
    manifest.U64(d.crc64);
  };
  put_digest(index_digest);
  put_digest(vocab_digest);
  put_digest(freqs_digest);
  for (const FileDigest& d : shard_digests_) put_digest(d);
  manifest.U64(Crc64(manifest.str()));
  return AtomicWriteFile(dir_ + "/" + std::string(kManifestFile),
                         manifest.str());
}

Status WriteDatasetToStore(const CheckInDataset& dataset,
                           const std::string& dir,
                           const StoreWriterOptions& options) {
  PLP_ASSIGN_OR_RETURN(const auto writer,
                       CheckInStoreWriter::Create(dir, options));
  writer->PreRegisterVocab(dataset.num_locations());
  std::vector<int32_t> locations;
  std::vector<int64_t> timestamps;
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    locations.clear();
    timestamps.clear();
    for (const CheckIn& c : dataset.UserCheckIns(u)) {
      locations.push_back(c.location);
      timestamps.push_back(c.timestamp);
    }
    PLP_RETURN_IF_ERROR(writer->AppendUserDense(locations, timestamps));
  }
  return writer->Finish();
}

}  // namespace plp::data::store
