#ifndef PLP_DATA_SYNTHETIC_GENERATOR_H_
#define PLP_DATA_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/checkin.h"
#include "data/dataset.h"

namespace plp::data {

namespace store {
class CheckInStoreWriter;
}  // namespace store

/// Configuration of the synthetic Foursquare-like check-in generator.
///
/// The generator substitutes for the proprietary Foursquare Tokyo dataset
/// (see DESIGN.md). It reproduces the statistical properties the paper's
/// method depends on: POI popularity follows Zipf's law, per-user activity
/// is heavy-tailed, check-ins cluster spatially into districts, and users
/// follow an exploration / preferential-return mobility process, which
/// yields the co-visitation structure a skip-gram can learn.
struct SyntheticConfig {
  int32_t num_users = 4602;
  int32_t num_locations = 5069;
  int32_t num_clusters = 16;      ///< spatial "districts" in the city
  double zipf_exponent = 1.0;     ///< POI popularity skew
  double cluster_stddev_deg = 0.008;  ///< POI scatter around district centers

  /// Per-user activity: number of check-ins ~ round(exp(N(mu, sigma)))
  /// clamped to [min_checkins_per_user, max_checkins_per_user].
  double log_checkins_mean = 4.6;   ///< exp(4.6) ~ 100
  double log_checkins_stddev = 0.9;
  int32_t min_checkins_per_user = 10;
  int32_t max_checkins_per_user = 2000;

  /// Mobility model.
  double return_probability = 0.75;  ///< preferential return vs explore
  double home_cluster_affinity = 0.85;  ///< P(explore stays in home district)

  /// Forbid visiting the same POI twice within one session (realistic for
  /// sub-six-hour trajectories; returns still dominate *across* sessions).
  /// Without this, next-location prediction degenerates to "repeat the
  /// session" and even a random embedding scores highly.
  bool unique_within_session = true;
  int32_t session_length_min = 2;
  int32_t session_length_max = 6;
  double mean_hours_between_sessions = 36.0;
  double mean_minutes_between_checkins = 45.0;

  int64_t start_timestamp = 0;  ///< epoch of the first possible check-in
  BoundingBox bbox;             ///< defaults to the paper's Tokyo region
};

/// Optional ground-truth side information, useful for tests and for
/// qualitative inspection of learned embeddings (locations in the same
/// cluster should embed nearby).
struct SyntheticGroundTruth {
  std::vector<int32_t> location_cluster;  ///< cluster id per location
  std::vector<int32_t> user_home_cluster; ///< home cluster per user
  std::vector<double> location_popularity;  ///< global Zipf weight
};

/// Generates a dataset from `config`. Deterministic given `rng`'s seed.
/// Fails on inconsistent configuration (e.g. non-positive counts).
/// `ground_truth` may be null.
Result<CheckInDataset> GenerateSyntheticCheckIns(
    const SyntheticConfig& config, Rng& rng,
    SyntheticGroundTruth* ground_truth = nullptr);

/// Streams a synthetic corpus user-by-user into an on-disk PLPD writer.
/// The world setup and every per-user trajectory consume the RNG in
/// exactly the same order as GenerateSyntheticCheckIns, so the two modes
/// produce the same check-in stream for a given (config, seed) — but
/// resident memory here stays O(num_locations + num_users): each user's
/// trajectory is handed to the writer and dropped, never accumulated.
/// That is what makes a 10^6-user / 10^5-POI corpus generable on a
/// laptop-sized heap.
///
/// Location ids are appended as raw ids, so the store's vocabulary
/// assigns dense ids in first-appearance order — a different (but
/// self-consistent) numbering than CheckInDataset::FromRecords, which
/// densifies by ascending raw id. The caller owns `writer` and must call
/// Finish() afterwards to commit the corpus.
Status GenerateSyntheticCheckInsToStore(const SyntheticConfig& config,
                                        Rng& rng,
                                        store::CheckInStoreWriter& writer);

/// A down-scaled configuration (hundreds of users, hundreds of POIs) whose
/// training runs finish in seconds; used by tests and the default bench
/// scale.
SyntheticConfig SmallSyntheticConfig();

/// Full-size clone of the paper's dataset dimensions (4602 users after
/// filtering, 5069 POIs, ~740k check-ins).
SyntheticConfig PaperSyntheticConfig();

}  // namespace plp::data

#endif  // PLP_DATA_SYNTHETIC_GENERATOR_H_
