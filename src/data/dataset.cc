#include "data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace plp::data {

Result<CheckInDataset> CheckInDataset::FromRecords(
    std::vector<CheckIn> records) {
  // Dense ids are assigned by ascending original id, so densification is
  // order-independent and idempotent (a save/load round trip of an
  // already-dense dataset preserves every id).
  std::set<int32_t> user_id_set, location_id_set;
  for (const CheckIn& c : records) {
    if (c.user < 0 || c.location < 0) {
      return InvalidArgumentError("check-in with negative user/location id");
    }
    user_id_set.insert(c.user);
    location_id_set.insert(c.location);
  }
  std::unordered_map<int32_t, int32_t> user_ids, location_ids;
  for (int32_t id : user_id_set) {
    user_ids.emplace(id, static_cast<int32_t>(user_ids.size()));
  }
  for (int32_t id : location_id_set) {
    location_ids.emplace(id, static_cast<int32_t>(location_ids.size()));
  }

  CheckInDataset ds;
  ds.users_.resize(user_ids.size());
  for (const CheckIn& c : records) {
    CheckIn dense = c;
    dense.user = user_ids.at(c.user);
    dense.location = location_ids.at(c.location);
    ds.users_[dense.user].push_back(dense);
  }
  ds.num_locations_ = static_cast<int32_t>(location_ids.size());
  ds.num_checkins_ = static_cast<int64_t>(records.size());
  for (auto& u : ds.users_) {
    std::stable_sort(u.begin(), u.end(),
                     [](const CheckIn& a, const CheckIn& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return ds;
}

double CheckInDataset::Density() const {
  if (num_users() == 0 || num_locations() == 0) return 0.0;
  // Count distinct (user, location) cells.
  int64_t cells = 0;
  for (const auto& u : users_) {
    std::unordered_set<int32_t> locs;
    for (const CheckIn& c : u) locs.insert(c.location);
    cells += static_cast<int64_t>(locs.size());
  }
  return static_cast<double>(cells) /
         (static_cast<double>(num_users()) *
          static_cast<double>(num_locations()));
}

const std::vector<CheckIn>& CheckInDataset::UserCheckIns(int32_t user) const {
  PLP_CHECK(user >= 0 && user < num_users());
  return users_[user];
}

CheckInDataset CheckInDataset::Filter(int64_t min_checkins_per_user,
                                      int64_t min_users_per_location) const {
  // Pass 1: drop light users.
  std::vector<const std::vector<CheckIn>*> kept_users;
  for (const auto& u : users_) {
    if (static_cast<int64_t>(u.size()) >= min_checkins_per_user) {
      kept_users.push_back(&u);
    }
  }
  // Pass 2: locations visited by too few of the kept users.
  std::unordered_map<int32_t, std::unordered_set<int32_t>> visitors;
  for (size_t ui = 0; ui < kept_users.size(); ++ui) {
    for (const CheckIn& c : *kept_users[ui]) {
      visitors[c.location].insert(static_cast<int32_t>(ui));
    }
  }
  std::unordered_set<int32_t> kept_locations;
  for (const auto& [loc, vs] : visitors) {
    if (static_cast<int64_t>(vs.size()) >= min_users_per_location) {
      kept_locations.insert(loc);
    }
  }
  // Rebuild with original (sparse-tolerant) ids; FromRecords re-densifies.
  std::vector<CheckIn> records;
  int32_t new_user = 0;
  for (const auto* u : kept_users) {
    bool any = false;
    for (const CheckIn& c : *u) {
      if (!kept_locations.count(c.location)) continue;
      CheckIn r = c;
      r.user = new_user;
      records.push_back(r);
      any = true;
    }
    if (any) ++new_user;
  }
  auto result = FromRecords(std::move(records));
  PLP_CHECK_OK(result.status());
  return std::move(result).value();
}

Result<std::pair<CheckInDataset, CheckInDataset>> CheckInDataset::SplitHoldout(
    int32_t holdout_users, Rng& rng) const {
  if (holdout_users <= 0 || holdout_users >= num_users()) {
    return InvalidArgumentError(
        "holdout_users must be in (0, num_users)");
  }
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(num_users()), static_cast<size_t>(holdout_users));
  std::unordered_set<size_t> holdout(picks.begin(), picks.end());

  CheckInDataset train, test;
  train.num_locations_ = test.num_locations_ = num_locations_;
  for (size_t ui = 0; ui < users_.size(); ++ui) {
    CheckInDataset& target = holdout.count(ui) ? test : train;
    const int32_t new_id = static_cast<int32_t>(target.users_.size());
    target.users_.push_back(users_[ui]);
    for (CheckIn& c : target.users_.back()) c.user = new_id;
    target.num_checkins_ += static_cast<int64_t>(users_[ui].size());
  }
  return std::make_pair(std::move(train), std::move(test));
}

std::vector<std::vector<int32_t>> CheckInDataset::Sessionize(
    int32_t user, int64_t max_session_seconds,
    int64_t max_gap_seconds) const {
  PLP_CHECK_GT(max_session_seconds, 0);
  PLP_CHECK_GT(max_gap_seconds, 0);
  const auto& checkins = UserCheckIns(user);
  std::vector<std::vector<int32_t>> sessions;
  int64_t session_start = 0;
  int64_t previous = 0;
  for (const CheckIn& c : checkins) {
    const bool start_new =
        sessions.empty() || c.timestamp - session_start > max_session_seconds ||
        c.timestamp - previous > max_gap_seconds;
    if (start_new) {
      sessions.emplace_back();
      session_start = c.timestamp;
    }
    sessions.back().push_back(c.location);
    previous = c.timestamp;
  }
  return sessions;
}

std::vector<int64_t> CheckInDataset::UserRecordCounts() const {
  std::vector<int64_t> counts;
  counts.reserve(users_.size());
  for (const auto& u : users_) counts.push_back(static_cast<int64_t>(u.size()));
  return counts;
}

Status CheckInDataset::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open for writing: " + path);
  out.precision(17);  // lossless double round trip
  out << "user,location,timestamp,latitude,longitude\n";
  for (const auto& u : users_) {
    for (const CheckIn& c : u) {
      out << c.user << "," << c.location << "," << c.timestamp << ","
          << c.latitude << "," << c.longitude << "\n";
    }
  }
  if (!out) return InternalError("write failed: " + path);
  return Status::Ok();
}

Result<CheckInDataset> CheckInDataset::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line)) return InvalidArgumentError("empty file");
  std::vector<CheckIn> records;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    CheckIn c;
    char* cursor = line.data();
    char* end = nullptr;
    auto parse_long = [&](int64_t& out_value) -> bool {
      out_value = std::strtoll(cursor, &end, 10);
      if (end == cursor) return false;
      cursor = (*end == ',') ? end + 1 : end;
      return true;
    };
    auto parse_double = [&](double& out_value) -> bool {
      out_value = std::strtod(cursor, &end);
      if (end == cursor) return false;
      cursor = (*end == ',') ? end + 1 : end;
      return true;
    };
    int64_t user = 0, location = 0;
    if (!parse_long(user) || !parse_long(location) ||
        !parse_long(c.timestamp) || !parse_double(c.latitude) ||
        !parse_double(c.longitude)) {
      return InvalidArgumentError("malformed CSV at line " +
                                  std::to_string(line_number));
    }
    c.user = static_cast<int32_t>(user);
    c.location = static_cast<int32_t>(location);
    records.push_back(c);
  }
  return FromRecords(std::move(records));
}

}  // namespace plp::data
