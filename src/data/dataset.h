#ifndef PLP_DATA_DATASET_H_
#define PLP_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/checkin.h"

namespace plp::data {

/// A user-partitioned check-in dataset with a dense location vocabulary.
///
/// Invariants: user ids are dense in [0, num_users()), location ids are dense
/// in [0, num_locations()), each user's check-ins are sorted by timestamp,
/// and every user has at least one check-in.
class CheckInDataset {
 public:
  CheckInDataset() = default;

  /// Builds a dataset from raw records. User and location ids may be sparse;
  /// they are re-mapped to dense ids (mapping is by order of first
  /// appearance). Fails on negative ids.
  static Result<CheckInDataset> FromRecords(std::vector<CheckIn> records);

  int32_t num_users() const { return static_cast<int32_t>(users_.size()); }
  int32_t num_locations() const { return num_locations_; }
  int64_t num_checkins() const { return num_checkins_; }

  /// Fraction of the user x location matrix that is non-zero; location data
  /// is typically ~0.1% dense (Section 1).
  double Density() const;

  /// Time-sorted check-ins of one user. Requires 0 <= user < num_users().
  const std::vector<CheckIn>& UserCheckIns(int32_t user) const;

  /// Removes users with fewer than `min_checkins` check-ins, then locations
  /// visited by fewer than `min_users` distinct users (the paper filters at
  /// 10 and 2 respectively), then drops users left with no check-ins.
  /// Ids are re-densified. Returns the filtered dataset.
  CheckInDataset Filter(int64_t min_checkins_per_user,
                        int64_t min_users_per_location) const;

  /// Randomly removes `holdout_users` users and returns {training set,
  /// holdout set}; the two are user-disjoint but share the location
  /// vocabulary (location ids are NOT remapped so embeddings transfer).
  /// Fails if holdout_users >= num_users().
  Result<std::pair<CheckInDataset, CheckInDataset>> SplitHoldout(
      int32_t holdout_users, Rng& rng) const;

  /// Splits one user's history into trajectories no longer than
  /// `max_session_seconds` total duration (six hours in Section 5.1),
  /// additionally cutting at gaps larger than `max_gap_seconds`.
  /// Returns sequences of location ids.
  std::vector<std::vector<int32_t>> Sessionize(int32_t user,
                                               int64_t max_session_seconds,
                                               int64_t max_gap_seconds) const;

  /// Per-user check-in counts.
  std::vector<int64_t> UserRecordCounts() const;

  /// CSV round trip: "user,location,timestamp,latitude,longitude" with a
  /// header line.
  Status SaveCsv(const std::string& path) const;
  static Result<CheckInDataset> LoadCsv(const std::string& path);

 private:
  std::vector<std::vector<CheckIn>> users_;
  int32_t num_locations_ = 0;
  int64_t num_checkins_ = 0;
};

}  // namespace plp::data

#endif  // PLP_DATA_DATASET_H_
