#ifndef PLP_DATA_STATISTICS_H_
#define PLP_DATA_STATISTICS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/dataset.h"

namespace plp::data {

/// Summary statistics of a check-in dataset — the quantities the paper
/// uses to characterize location data ("inherently skewed and sparse",
/// density ~0.1%, Zipf check-in frequencies, long-tailed user activity).
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_locations = 0;
  int64_t num_checkins = 0;
  double density = 0.0;  ///< non-zero share of the user × POI matrix

  // Per-user check-in counts.
  double user_checkins_mean = 0.0;
  int64_t user_checkins_median = 0;
  int64_t user_checkins_p90 = 0;
  int64_t user_checkins_max = 0;

  // Location popularity skew.
  double location_gini = 0.0;    ///< Gini of per-POI visit counts, [0, 1)
  double top1pct_share = 0.0;    ///< visit share of the top 1% POIs

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Streaming single-pass statistics accumulator: feed each user's
/// location stream once, read the summary at the end. State is O(users +
/// locations), never O(check-ins), so a million-user on-disk corpus can
/// be characterized in one bounded-RSS scan. The per-location counts it
/// accumulates are the same array the unigram negative sampler and the
/// word2vec subsampling table are built from (CountTokenFrequencies), so
/// stats and sampler construction share one scan of the store.
class StatsAccumulator {
 public:
  explicit StatsAccumulator(int32_t num_locations);

  /// Adds one user's full check-in stream (token = dense location id).
  /// Users with empty streams still count toward num_users.
  void AddUser(std::span<const int32_t> locations);

  /// Per-dense-location visit counts accumulated so far.
  const std::vector<int64_t>& location_counts() const {
    return location_counts_;
  }

  /// Summary over everything added so far. O(users·log users +
  /// locations·log locations) for the sorts; callable repeatedly.
  DatasetStats Finalize() const;

 private:
  int32_t num_locations_ = 0;
  int64_t num_checkins_ = 0;
  std::vector<int64_t> user_counts_;
  std::vector<int64_t> location_counts_;
};

/// Computes summary statistics in one pass over the dataset.
DatasetStats ComputeStats(const CheckInDataset& dataset);

/// Computes summary statistics in one pass over any corpus view —
/// including the mmap-backed store, which is scanned without
/// materializing the corpus (per-location "visits" are token counts).
DatasetStats ComputeStats(const CorpusView& corpus);

}  // namespace plp::data

#endif  // PLP_DATA_STATISTICS_H_
