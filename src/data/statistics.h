#ifndef PLP_DATA_STATISTICS_H_
#define PLP_DATA_STATISTICS_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace plp::data {

/// Summary statistics of a check-in dataset — the quantities the paper
/// uses to characterize location data ("inherently skewed and sparse",
/// density ~0.1%, Zipf check-in frequencies, long-tailed user activity).
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_locations = 0;
  int64_t num_checkins = 0;
  double density = 0.0;  ///< non-zero share of the user × POI matrix

  // Per-user check-in counts.
  double user_checkins_mean = 0.0;
  int64_t user_checkins_median = 0;
  int64_t user_checkins_p90 = 0;
  int64_t user_checkins_max = 0;

  // Location popularity skew.
  double location_gini = 0.0;    ///< Gini of per-POI visit counts, [0, 1)
  double top1pct_share = 0.0;    ///< visit share of the top 1% POIs

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes summary statistics. O(total check-ins).
DatasetStats ComputeStats(const CheckInDataset& dataset);

}  // namespace plp::data

#endif  // PLP_DATA_STATISTICS_H_
