#include "serve/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace plp::serve {
namespace {

/// Index of the centroid with the highest dot against `row`; ties break
/// toward the smaller cluster id (fixed scan order keeps builds
/// deterministic — the dispatched DotKernel is bitwise-identical to the
/// portable body, so SIMD availability cannot change the clustering).
int32_t NearestCentroid(const float* row, const float* centroids,
                        int32_t num_clusters, int32_t dim) {
  int32_t best = 0;
  float best_score = DotKernel(centroids, row, static_cast<size_t>(dim));
  for (int32_t c = 1; c < num_clusters; ++c) {
    const float score =
        DotKernel(centroids + static_cast<size_t>(c) * dim, row,
                  static_cast<size_t>(dim));
    if (score > best_score) {
      best = c;
      best_score = score;
    }
  }
  return best;
}

void NormalizeRow(float* row, int32_t dim) {
  float sq = 0.0f;
  for (int32_t d = 0; d < dim; ++d) sq += row[d] * row[d];
  if (sq <= 0.0f) return;
  const float inv = 1.0f / std::sqrt(sq);
  for (int32_t d = 0; d < dim; ++d) row[d] *= inv;
}

}  // namespace

IvfIndex IvfIndex::Build(const float* matrix, int32_t num_rows, int32_t dim,
                         const Options& options) {
  PLP_CHECK_GT(num_rows, 0);
  PLP_CHECK_GT(dim, 0);
  IvfIndex index;
  index.dim_ = dim;
  int32_t clusters = options.num_clusters;
  if (clusters <= 0) {
    clusters = 2 * static_cast<int32_t>(
                       std::ceil(std::sqrt(static_cast<double>(num_rows))));
  }
  index.num_clusters_ = std::clamp(clusters, 1, num_rows);
  const int32_t c_count = index.num_clusters_;
  const size_t row_bytes = static_cast<size_t>(dim);

  // Strided training sample: every row when L is small, an even slice of
  // the matrix otherwise. Deterministic by construction.
  const int64_t max_sample = std::max<int64_t>(
      4096, static_cast<int64_t>(options.sample_per_cluster) * c_count);
  const int32_t stride = std::max<int32_t>(
      1, static_cast<int32_t>(num_rows / std::min<int64_t>(num_rows,
                                                           max_sample)));
  std::vector<int32_t> sample;
  for (int32_t r = 0; r < num_rows; r += stride) sample.push_back(r);

  // Seed centroids with evenly strided sample rows.
  index.centroids_.assign(static_cast<size_t>(c_count) * dim, 0.0f);
  for (int32_t c = 0; c < c_count; ++c) {
    const int32_t r =
        sample[static_cast<size_t>(c) * sample.size() / c_count];
    std::copy_n(matrix + static_cast<size_t>(r) * row_bytes, dim,
                index.centroids_.data() + static_cast<size_t>(c) * dim);
  }

  // Lloyd iterations over the sample: assign, then recompute + renormalize
  // centroids. Clusters that go empty keep their previous centroid.
  std::vector<float> sums(static_cast<size_t>(c_count) * dim);
  std::vector<int32_t> counts(static_cast<size_t>(c_count));
  for (int32_t it = 0; it < options.iterations; ++it) {
    std::fill(sums.begin(), sums.end(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (int32_t r : sample) {
      const float* row = matrix + static_cast<size_t>(r) * row_bytes;
      const int32_t c =
          NearestCentroid(row, index.centroids_.data(), c_count, dim);
      float* sum = sums.data() + static_cast<size_t>(c) * dim;
      for (int32_t d = 0; d < dim; ++d) sum[d] += row[d];
      ++counts[static_cast<size_t>(c)];
    }
    for (int32_t c = 0; c < c_count; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      float* centroid = index.centroids_.data() + static_cast<size_t>(c) * dim;
      const float* sum = sums.data() + static_cast<size_t>(c) * dim;
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int32_t d = 0; d < dim; ++d) centroid[d] = sum[d] * inv;
      NormalizeRow(centroid, dim);
    }
  }

  // Final pass: assign every row (not just the sample) to its cluster and
  // build the posting lists, ascending row id within each cluster.
  std::vector<int32_t> assignment(static_cast<size_t>(num_rows));
  std::vector<int32_t> sizes(static_cast<size_t>(c_count), 0);
  for (int32_t r = 0; r < num_rows; ++r) {
    const int32_t c = NearestCentroid(matrix + static_cast<size_t>(r) * row_bytes,
                                      index.centroids_.data(), c_count, dim);
    assignment[static_cast<size_t>(r)] = c;
    ++sizes[static_cast<size_t>(c)];
  }
  index.cluster_begin_.assign(static_cast<size_t>(c_count) + 1, 0);
  for (int32_t c = 0; c < c_count; ++c) {
    index.cluster_begin_[static_cast<size_t>(c) + 1] =
        index.cluster_begin_[static_cast<size_t>(c)] +
        sizes[static_cast<size_t>(c)];
  }
  index.member_ids_.resize(static_cast<size_t>(num_rows));
  std::vector<int32_t> cursor(index.cluster_begin_.begin(),
                              index.cluster_begin_.end() - 1);
  for (int32_t r = 0; r < num_rows; ++r) {
    const int32_t c = assignment[static_cast<size_t>(r)];
    index.member_ids_[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] =
        r;
  }
  return index;
}

void IvfIndex::TopClusters(std::span<const float> profile, int32_t nprobe,
                           std::vector<int32_t>& out) const {
  out.clear();
  PLP_CHECK_EQ(profile.size(), static_cast<size_t>(dim_));
  nprobe = std::clamp(nprobe, 1, num_clusters_);

  // Score all centroids, select the nprobe best with an O(C) partition,
  // and emit them in ascending cluster id. The (score desc, id asc) order
  // is a strict total order, so the selected set is deterministic; id
  // order within it is what the pruned scan wants — the packed payload is
  // laid out by cluster, so ascending ids mean a monotone address walk.
  struct Scored {
    float score;
    int32_t cluster;
  };
  std::vector<Scored> scored(static_cast<size_t>(num_clusters_));
  for (int32_t c = 0; c < num_clusters_; ++c) {
    scored[static_cast<size_t>(c)] = {
        DotKernel(centroids_.data() + static_cast<size_t>(c) * dim_,
                  profile.data(), static_cast<size_t>(dim_)),
        c};
  }
  std::nth_element(scored.begin(), scored.begin() + (nprobe - 1),
                   scored.end(), [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.cluster < b.cluster;
                   });
  out.reserve(static_cast<size_t>(nprobe));
  for (int32_t p = 0; p < nprobe; ++p) {
    out.push_back(scored[static_cast<size_t>(p)].cluster);
  }
  std::sort(out.begin(), out.end());
}

void IvfIndex::CandidateRows(std::span<const float> profile, int32_t nprobe,
                             std::vector<int32_t>& out) const {
  std::vector<int32_t> clusters;
  TopClusters(profile, nprobe, clusters);
  out.clear();
  size_t total = 0;
  for (int32_t c : clusters) total += ClusterMembers(c).size();
  out.reserve(total);
  for (int32_t c : clusters) {
    const std::span<const int32_t> members = ClusterMembers(c);
    out.insert(out.end(), members.begin(), members.end());
  }
}

}  // namespace plp::serve
