#include "serve/recall_gate.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace plp::serve {

double MeasureRecallAtK(const ModelSnapshot& candidate,
                        const ModelSnapshot& reference,
                        const RecallProbe& probe) {
  PLP_CHECK(candidate.num_locations() == reference.num_locations());
  const int32_t locations = reference.num_locations();
  const int32_t k = std::min(std::max(probe.k, 1), locations);
  const int32_t history_length = std::max(probe.history_length, 1);
  const int32_t num_queries = std::max(probe.num_queries, 1);

  Rng rng(probe.seed);
  std::vector<int32_t> history(static_cast<size_t>(history_length));
  double recall_sum = 0.0;
  for (int32_t q = 0; q < num_queries; ++q) {
    for (int32_t& h : history) {
      h = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(locations)));
    }
    const std::vector<float> reference_profile = reference.Profile(history);
    const auto exact = TopKScores(reference, reference_profile, k);
    // The candidate scores through its own payload (dequantized kernels)
    // and its own profile — exactly what a reader of that snapshot sees.
    const std::vector<float> candidate_profile = candidate.Profile(history);
    const auto answered =
        candidate.ivf() != nullptr
            ? ApproxTopKScores(candidate, candidate_profile, k, probe.nprobe)
            : TopKScores(candidate, candidate_profile, k);
    int hits = 0;
    for (const ScoredLocation& truth : exact) {
      for (const ScoredLocation& got : answered) {
        if (got.location == truth.location) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) / static_cast<double>(k);
  }
  return recall_sum / static_cast<double>(num_queries);
}

}  // namespace plp::serve
