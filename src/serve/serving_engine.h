#ifndef PLP_SERVE_SERVING_ENGINE_H_
#define PLP_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/model_snapshot.h"
#include "serve/session_store.h"

namespace plp::serve {

/// One next-location request. The common wire shape is `(user_id,
/// new_checkin)` — the engine appends the check-in to the user's session
/// and scores the stored history. Stateless callers may instead pass an
/// explicit `history` (which bypasses the session store entirely).
struct Request {
  int64_t user_id = 0;
  int32_t new_checkin = -1;       ///< < 0: don't append, read the session
  std::vector<int32_t> history;   ///< non-empty: overrides the session
  int32_t k = 10;                 ///< how many locations to return
  std::vector<int32_t> exclude;   ///< ids never recommended (current POI…)
  /// Deadline budget from arrival; 0 disables deadline handling. Requests
  /// still queued when the budget lapses are failed without scoring, so an
  /// overloaded engine sheds load instead of serving stale answers.
  int64_t timeout_micros = 0;
  /// When the request entered the system. Default (epoch) means "stamp on
  /// submission"; tests pin it to exercise the deadline path.
  std::chrono::steady_clock::time_point arrival{};
};

/// The engine's answer. `status` is per-request: bad ids or an unknown
/// session fail that request only, never the process.
struct Response {
  Status status;
  std::vector<ScoredLocation> topk;  ///< best first; empty on error
  uint64_t model_version = 0;        ///< snapshot that scored the request
  int64_t latency_micros = 0;        ///< submission → completion
};

struct ServingConfig {
  int32_t num_threads = 4;      ///< worker pool size (min 1)
  int32_t max_batch = 32;       ///< micro-batch size cap (min 1)
  /// Async admission bound: SubmitAsync sheds (ResourceExhausted, counted
  /// as requests_overloaded) once this many submissions are in flight
  /// instead of queueing without limit. 0 disables shedding. Synchronous
  /// Recommend/RecommendBatch apply caller backpressure by blocking, so
  /// they are not shed.
  int32_t max_queue = 1024;
  SessionStore::Options sessions;
  /// How PublishModel/PublishFile build snapshots (format, IVF index).
  /// Defaults are the exact float32 scan — the reference configuration.
  SnapshotOptions snapshot;
  /// IVF probe width when the published snapshot carries an index:
  /// 0 uses IvfIndex::default_nprobe() (the recall-gated default); any
  /// positive value overrides it (larger = more recall, more scan).
  /// Ignored on snapshots without an index.
  int32_t nprobe = 0;
};

/// Thread-pool-backed request execution over the registry's live snapshot.
///
/// Concurrency model: every request pins the current snapshot for exactly
/// the duration of its scoring, so `registry().Publish` hot-swaps take
/// effect at request granularity. Batched submission chops the request
/// list into micro-batches of `max_batch`, fans them across the pool, and
/// loads the snapshot/clock once per batch instead of once per request —
/// the amortization that makes many concurrent small TopK calls cheap.
class ServingEngine {
 public:
  explicit ServingEngine(const ServingConfig& config);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Builds a snapshot from `model` and publishes it. `version` tags the
  /// snapshot in responses/metrics.
  Status PublishModel(const sgns::SgnsModel& model, uint64_t version);

  /// Loads a model file of either format (full or embeddings-only) and
  /// publishes it.
  Status PublishFile(const std::string& path, uint64_t version);

  /// Publishes an already-built snapshot (the sharded engine builds one
  /// and hands each shard its own replica).
  Status PublishSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Synchronous execution of one request on the caller's thread.
  Response Recommend(const Request& request);

  /// Executes `requests` as micro-batches across the worker pool; blocks
  /// until all are done. Response i answers request i.
  std::vector<Response> RecommendBatch(std::vector<Request> requests);

  /// Enqueues one request onto the pool and returns its future response.
  std::future<Response> SubmitAsync(Request request);

  /// Enqueues every request in one pool push: one lock acquisition and one
  /// condvar wakeup for the whole batch instead of one signal per request
  /// (the open-loop bench submits arrivals that fell due together this
  /// way). Admission control is still per request — response i answers
  /// request i, and any shed request resolves immediately with
  /// RESOURCE_EXHAUSTED without entering the pool.
  std::vector<std::future<Response>> SubmitAsyncBatch(
      std::vector<Request> requests);

  const ServingConfig& config() const { return config_; }
  ModelRegistry& registry() { return registry_; }
  SessionStore& sessions() { return sessions_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

 private:
  /// Scores one request against `snapshot` (shared by a whole batch).
  Response Execute(const Request& request,
                   const std::shared_ptr<const ModelSnapshot>& snapshot,
                   std::chrono::steady_clock::time_point now);
  /// Stamps latency and rolls the outcome into the metrics counters.
  Response Finish(Response response,
                  std::chrono::steady_clock::time_point start);

  ServingConfig config_;
  ModelRegistry registry_;
  SessionStore sessions_;
  Metrics metrics_;
  ThreadPool pool_;
  /// SubmitAsync requests accepted but not yet finished.
  std::atomic<int64_t> async_in_flight_{0};
};

}  // namespace plp::serve

#endif  // PLP_SERVE_SERVING_ENGINE_H_
