#ifndef PLP_SERVE_MODEL_SNAPSHOT_H_
#define PLP_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "sgns/model.h"
#include "sgns/model_io.h"

namespace plp::serve {

/// Immutable serving artifact: the unit-normalized embedding matrix in
/// row-major float32 — half the footprint of the training-side double
/// matrix, which matters when two snapshots coexist during a hot swap.
///
/// This mirrors the paper's deployment story (Section 3.3: "only the
/// embedding matrix is deployed"): training emits a private artifact, and
/// the serving layer never sees raw check-in data, only this matrix.
///
/// Snapshots are built once, checksummed, and shared read-only behind
/// `std::shared_ptr<const ModelSnapshot>`; readers pin the snapshot they
/// scored against for the duration of a request, so a concurrent swap in
/// ModelRegistry can never free a matrix mid-score.
class ModelSnapshot {
 public:
  /// Builds from a trained model (normalizes W, casts to float32).
  /// `version` is an operator-chosen id surfaced in responses and metrics.
  static Result<std::shared_ptr<const ModelSnapshot>> FromModel(
      const sgns::SgnsModel& model, uint64_t version);

  /// Builds from a deployment artifact (LoadEmbeddings output). Rows are
  /// re-normalized in float32 to restore unit length after the cast.
  static Result<std::shared_ptr<const ModelSnapshot>> FromDeployed(
      const sgns::DeployedEmbeddings& deployed, uint64_t version);

  /// Builds from a saved file of either kind: tries the full-model format
  /// first, then falls back to the embeddings-only deployment format.
  static Result<std::shared_ptr<const ModelSnapshot>> FromFile(
      const std::string& path, uint64_t version);

  int32_t num_locations() const { return num_locations_; }
  int32_t dim() const { return dim_; }
  uint64_t version() const { return version_; }

  /// FNV-1a 64 over the header and the float payload; stable across
  /// rebuilds from identical inputs, so operators can verify that the
  /// published snapshot matches the artifact they trained.
  uint64_t checksum() const { return checksum_; }

  /// Resident size of the embedding payload.
  size_t memory_bytes() const { return embeddings_.size() * sizeof(float); }

  std::span<const float> Row(int32_t location) const {
    return {embeddings_.data() + static_cast<size_t>(location) * dim_,
            static_cast<size_t>(dim_)};
  }
  std::span<const float> embeddings() const { return embeddings_; }

  /// F(ζ) in float32: average of the history rows, unit-normalized.
  /// History ids must be valid (use ValidateHistory on untrusted input).
  std::vector<float> Profile(std::span<const int32_t> recent) const;

  /// Checks every id against the vocabulary; the serving path surfaces
  /// this as a per-request error rather than aborting the process.
  Status ValidateHistory(std::span<const int32_t> recent) const;

 private:
  ModelSnapshot(int32_t num_locations, int32_t dim, uint64_t version,
                std::vector<float> embeddings);

  int32_t num_locations_ = 0;
  int32_t dim_ = 0;
  uint64_t version_ = 0;
  uint64_t checksum_ = 0;
  std::vector<float> embeddings_;  // row-major L × dim, rows unit-norm
};

/// One scored candidate of a TopK answer.
struct ScoredLocation {
  int32_t location = 0;
  float score = 0.0f;  ///< cosine similarity against the profile
};

/// Heap-based top-k by cosine score over the snapshot's matrix: one pass,
/// O(L·dim + L·log k), no full sort and no per-request O(L) mask. Ids in
/// `exclude` (typically the user's current POI — a handful of entries,
/// checked linearly) are skipped. Ties break toward the smaller id, the
/// same deterministic order eval::Recommender uses. Returned highest first.
std::vector<ScoredLocation> TopKScores(const ModelSnapshot& snapshot,
                                       std::span<const float> profile,
                                       int32_t k,
                                       std::span<const int32_t> exclude = {});

}  // namespace plp::serve

#endif  // PLP_SERVE_MODEL_SNAPSHOT_H_
