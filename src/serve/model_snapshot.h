#ifndef PLP_SERVE_MODEL_SNAPSHOT_H_
#define PLP_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/ivf_index.h"
#include "sgns/model.h"
#include "sgns/model_io.h"

namespace plp::serve {

/// Storage format of a snapshot's embedding payload.
///
///   * kFloat32 — the exact reference: row-major float32, unit-norm rows.
///   * kFloat16 — IEEE binary16 rows; dequantization is exact per element
///     and the absolute score error is ≤ 2^-11·Σ|profile_i| per row.
///   * kInt8    — symmetric per-row scale: q = round(v/s), s = max|row|/127;
///     score error is ≤ (s/2)·Σ|profile_i| per row.
///
/// Quantized formats change scores (within the tested bounds) and exist
/// for footprint and scan speed; float32 stays the default and the
/// reference the others are tested against.
enum class SnapshotFormat : uint8_t {
  kFloat32 = 0,
  kFloat16 = 1,
  kInt8 = 2,
};

/// Short stable name for logs/metrics ("f32", "fp16", "int8").
const char* FormatName(SnapshotFormat format);

/// Parses "f32" / "fp16" / "int8" (the FormatName spellings).
Result<SnapshotFormat> ParseSnapshotFormat(const std::string& name);

/// Build-time knobs applied when a model is turned into a snapshot.
/// Defaults reproduce the original behavior exactly: float32, no index.
struct SnapshotOptions {
  SnapshotFormat format = SnapshotFormat::kFloat32;
  /// Build the IVF candidate-pruning index at load time. Scoring stays
  /// exact-scan unless the engine also asks for a positive nprobe.
  bool build_ivf = false;
  IvfIndex::Options ivf;
};

/// Immutable serving artifact: the unit-normalized embedding matrix in
/// row-major float32 — half the footprint of the training-side double
/// matrix, which matters when two snapshots coexist during a hot swap.
/// Optionally quantized to fp16 or int8 (SnapshotOptions) at build time,
/// and optionally carrying an IVF candidate-pruning index.
///
/// This mirrors the paper's deployment story (Section 3.3: "only the
/// embedding matrix is deployed"): training emits a private artifact, and
/// the serving layer never sees raw check-in data, only this matrix. All
/// quantization and indexing happens post-publication, so none of it
/// touches the privacy mechanism.
///
/// Snapshots are built once, checksummed, and shared read-only behind
/// `std::shared_ptr<const ModelSnapshot>`; readers pin the snapshot they
/// scored against for the duration of a request, so a concurrent swap in
/// ModelRegistry can never free a matrix mid-score.
class ModelSnapshot {
 public:
  /// Builds from a trained model (normalizes W, casts to float32).
  /// `version` is an operator-chosen id surfaced in responses and metrics.
  static Result<std::shared_ptr<const ModelSnapshot>> FromModel(
      const sgns::SgnsModel& model, uint64_t version);
  static Result<std::shared_ptr<const ModelSnapshot>> FromModel(
      const sgns::SgnsModel& model, uint64_t version,
      const SnapshotOptions& options);

  /// Builds from a deployment artifact (LoadEmbeddings output). Rows are
  /// re-normalized in float32 to restore unit length after the cast.
  static Result<std::shared_ptr<const ModelSnapshot>> FromDeployed(
      const sgns::DeployedEmbeddings& deployed, uint64_t version);
  static Result<std::shared_ptr<const ModelSnapshot>> FromDeployed(
      const sgns::DeployedEmbeddings& deployed, uint64_t version,
      const SnapshotOptions& options);

  /// Builds from a saved file of either kind: tries the full-model format
  /// first, then falls back to the embeddings-only deployment format.
  static Result<std::shared_ptr<const ModelSnapshot>> FromFile(
      const std::string& path, uint64_t version);
  static Result<std::shared_ptr<const ModelSnapshot>> FromFile(
      const std::string& path, uint64_t version,
      const SnapshotOptions& options);

  /// Deep copy with its own allocations — the per-shard replica a sharded
  /// engine publishes so concurrent scans on different cores never share
  /// cache lines (or a refcounted control block) with another shard.
  std::shared_ptr<const ModelSnapshot> Replicate() const;

  int32_t num_locations() const { return num_locations_; }
  int32_t dim() const { return dim_; }
  uint64_t version() const { return version_; }
  SnapshotFormat format() const { return format_; }

  /// FNV-1a 64 over the header and the payload; stable across rebuilds
  /// from identical inputs, so operators can verify that the published
  /// snapshot matches the artifact they trained. Float32 snapshots hash
  /// exactly what they always did; quantized snapshots additionally fold
  /// in the format tag and the quantized payload.
  uint64_t checksum() const { return checksum_; }

  /// Resident size of the embedding payload (whatever format holds it),
  /// including the cluster-ordered copy an IVF-indexed snapshot carries.
  size_t memory_bytes() const;

  /// Integrity gate run before a snapshot may be installed: re-checks the
  /// shape invariants (positive dims, payload sizes matching the format)
  /// and recomputes the payload checksum from the bytes actually resident,
  /// comparing against the value stamped at build time. A failure means
  /// the artifact was corrupted between build and publish and must never
  /// reach readers. Fault point "snapshot.verify" lets tests and the chaos
  /// harness force this gate to fail.
  Status Verify() const;

  /// Float32 row view. Only valid on kFloat32 snapshots; quantized
  /// formats drop the float matrix (that is the point) — use
  /// DequantizeRow.
  std::span<const float> Row(int32_t location) const {
    return {embeddings_.data() + static_cast<size_t>(location) * dim_,
            static_cast<size_t>(dim_)};
  }
  std::span<const float> embeddings() const { return embeddings_; }

  /// Writes the dequantized row into `out` (size dim). Works on every
  /// format; on kFloat32 it is a copy.
  void DequantizeRow(int32_t location, std::span<float> out) const;

  /// Cosine score of one row against a float32 profile, through the
  /// format's dispatched kernel. This is the inner loop of every scan.
  float ScoreRow(int32_t location, const float* profile) const;

  /// Cosine score of the row at cluster-ordered position `pos` against a
  /// float32 profile. Valid only on snapshots built with an IVF index;
  /// `pos` comes from IvfIndex::ClusterOffset + the member index, and the
  /// original row id from ClusterMembers. Same kernel and same stored
  /// values as ScoreRow, so the result is bitwise identical — only the
  /// memory layout differs.
  float ScorePackedRow(int32_t pos, const float* profile) const;

  /// The IVF index, or nullptr when the snapshot was built without one.
  const IvfIndex* ivf() const { return ivf_ ? &*ivf_ : nullptr; }

  /// F(ζ): average of the (dequantized) history rows, unit-normalized.
  /// History ids must be valid (use ValidateHistory on untrusted input).
  std::vector<float> Profile(std::span<const int32_t> recent) const;

  /// Checks every id against the vocabulary; the serving path surfaces
  /// this as a per-request error rather than aborting the process.
  Status ValidateHistory(std::span<const int32_t> recent) const;

 private:
  ModelSnapshot(int32_t num_locations, int32_t dim, uint64_t version,
                std::vector<float> embeddings);
  ModelSnapshot(const ModelSnapshot&) = default;

  /// Converts the float32 payload into `options.format` (dropping the
  /// float matrix for quantized formats) and builds the IVF index if
  /// asked. Called by the factories right after construction, while the
  /// float matrix is still present.
  void ApplyOptions(const SnapshotOptions& options);

  /// Recomputes the build-time checksum from the resident payload (the
  /// float matrix on kFloat32, the quantized payload + format tag
  /// otherwise). Verify compares this against checksum_.
  uint64_t ComputeChecksum() const;

  /// Builds the cluster-ordered payload copy for the pruned scan: row at
  /// packed position p is the p-th entry of the index's concatenated
  /// posting lists. A posting list's rows are scattered through the
  /// id-ordered matrix — one hardware-unpredictable cache miss each — but
  /// contiguous here, so the pruned scan streams memory the way the exact
  /// scan does. Costs one extra copy of the payload, only when an index
  /// was built.
  void BuildPackedPayload();

  int32_t num_locations_ = 0;
  int32_t dim_ = 0;
  uint64_t version_ = 0;
  uint64_t checksum_ = 0;
  SnapshotFormat format_ = SnapshotFormat::kFloat32;
  std::vector<float> embeddings_;    ///< row-major L × dim (kFloat32 only)
  std::vector<uint16_t> half_;       ///< row-major L × dim (kFloat16 only)
  std::vector<int8_t> quant_;        ///< row-major L × dim (kInt8 only)
  std::vector<float> row_scale_;     ///< per-row dequant scale (kInt8 only)
  std::optional<IvfIndex> ivf_;

  /// Cluster-ordered payload copies (present only when ivf_ is built; one
  /// of them, matching format_). See BuildPackedPayload.
  std::vector<float> packed_f32_;
  std::vector<uint16_t> packed_half_;
  std::vector<int8_t> packed_quant_;
  std::vector<float> packed_scale_;  ///< per packed row (kInt8 only)
};

/// One scored candidate of a TopK answer.
struct ScoredLocation {
  int32_t location = 0;
  float score = 0.0f;  ///< cosine similarity against the profile
};

/// Heap-based top-k by cosine score over the snapshot's matrix: one pass,
/// O(L·dim + L·log k), no full sort and no per-request O(L) mask. Ids in
/// `exclude` (typically the user's current POI — a handful of entries,
/// checked linearly) are skipped. Ties break toward the smaller id, the
/// same deterministic order eval::Recommender uses. Returned highest
/// first. Scoring goes through the snapshot's format kernel; on float32
/// snapshots results are bitwise identical to the original exact scan.
std::vector<ScoredLocation> TopKScores(const ModelSnapshot& snapshot,
                                       std::span<const float> profile,
                                       int32_t k,
                                       std::span<const int32_t> exclude = {});

/// Approximate top-k through the snapshot's IVF index: exact-scores only
/// the rows of the `nprobe` best clusters (nprobe ≤ 0 uses the index
/// default). Falls back to the exact scan when the snapshot has no index.
std::vector<ScoredLocation> ApproxTopKScores(
    const ModelSnapshot& snapshot, std::span<const float> profile, int32_t k,
    int32_t nprobe, std::span<const int32_t> exclude = {});

}  // namespace plp::serve

#endif  // PLP_SERVE_MODEL_SNAPSHOT_H_
