#include "serve/metrics.h"

#include <bit>
#include <string>
#include <vector>

#include "common/table_printer.h"

namespace plp::serve {

void LatencyHistogram::Record(uint64_t micros) {
  // bucket = floor(log2(micros)), clamped; 0 and 1 µs share bucket 0.
  const int bucket =
      micros < 2 ? 0
                 : std::min(kNumBuckets - 1,
                            static_cast<int>(std::bit_width(micros)) - 1);
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t LatencyHistogram::QuantileUpperBoundMicros(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample (1-based, ceil), then walk the buckets.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(n) +
                                                  0.999999));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += BucketCount(b);
    if (cumulative >= rank) return uint64_t{1} << (b + 1);
  }
  return uint64_t{1} << kNumBuckets;
}

uint64_t Metrics::TotalRequests() const {
  return requests_ok.load(std::memory_order_relaxed) +
         requests_invalid_argument.load(std::memory_order_relaxed) +
         requests_not_found.load(std::memory_order_relaxed) +
         requests_deadline_exceeded.load(std::memory_order_relaxed) +
         requests_no_model.load(std::memory_order_relaxed) +
         requests_overloaded.load(std::memory_order_relaxed);
}

void Metrics::PrintTable(std::ostream& os) const {
  TablePrinter table({"metric", "value"});
  auto add = [&table](const std::string& name, uint64_t value) {
    table.NewRow();
    table.AddCell(name);
    table.AddCell(static_cast<int64_t>(value));
  };
  add("requests_total", TotalRequests());
  add("requests_ok", requests_ok.load(std::memory_order_relaxed));
  add("requests_invalid_argument",
      requests_invalid_argument.load(std::memory_order_relaxed));
  add("requests_not_found",
      requests_not_found.load(std::memory_order_relaxed));
  add("requests_deadline_exceeded",
      requests_deadline_exceeded.load(std::memory_order_relaxed));
  add("requests_no_model",
      requests_no_model.load(std::memory_order_relaxed));
  add("requests_overloaded",
      requests_overloaded.load(std::memory_order_relaxed));
  add("protocol_errors", protocol_errors.load(std::memory_order_relaxed));
  add("batches", batches.load(std::memory_order_relaxed));
  add("batched_requests",
      batched_requests.load(std::memory_order_relaxed));
  add("model_swaps", model_swaps.load(std::memory_order_relaxed));
  add("latency_p50_us_le", latency.QuantileUpperBoundMicros(0.50));
  add("latency_p95_us_le", latency.QuantileUpperBoundMicros(0.95));
  add("latency_p99_us_le", latency.QuantileUpperBoundMicros(0.99));
  table.NewRow();
  table.AddCell("latency_mean_us");
  table.AddCell(latency.MeanMicros(), 1);
  table.PrintAligned(os);
}

}  // namespace plp::serve
