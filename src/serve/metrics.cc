#include "serve/metrics.h"

#include <bit>
#include <chrono>
#include <string>
#include <vector>

#include "common/table_printer.h"

namespace plp::serve {

void LatencyHistogram::Record(uint64_t micros) {
  // bucket = floor(log2(micros)), clamped; 0 and 1 µs share bucket 0.
  const int bucket =
      micros < 2 ? 0
                 : std::min(kNumBuckets - 1,
                            static_cast<int>(std::bit_width(micros)) - 1);
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMicros() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t LatencyHistogram::QuantileUpperBoundMicros(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample (1-based, ceil), then walk the buckets.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(n) +
                                                  0.999999));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += BucketCount(b);
    if (cumulative >= rank) return uint64_t{1} << (b + 1);
  }
  return uint64_t{1} << kNumBuckets;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[static_cast<size_t>(b)].fetch_add(other.BucketCount(b),
                                               std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_micros_.fetch_add(other.sum_micros_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

double Metrics::SwapAgeSeconds(int64_t now_micros) const {
  const int64_t stamp = last_swap_steady_micros.load(std::memory_order_relaxed);
  if (stamp == 0) return -1.0;
  return static_cast<double>(now_micros - stamp) * 1e-6;
}

void Metrics::RecordSwap(int64_t now_micros) {
  model_swaps.fetch_add(1, std::memory_order_relaxed);
  last_swap_steady_micros.store(now_micros, std::memory_order_relaxed);
}

void Metrics::MergeFrom(const Metrics& other) {
  auto acc = [](std::atomic<uint64_t>& into, const std::atomic<uint64_t>& from) {
    into.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  };
  acc(requests_ok, other.requests_ok);
  acc(requests_invalid_argument, other.requests_invalid_argument);
  acc(requests_not_found, other.requests_not_found);
  acc(requests_deadline_exceeded, other.requests_deadline_exceeded);
  acc(requests_no_model, other.requests_no_model);
  acc(requests_overloaded, other.requests_overloaded);
  acc(batches, other.batches);
  acc(batched_requests, other.batched_requests);
  acc(model_swaps, other.model_swaps);
  acc(protocol_errors, other.protocol_errors);
  acc(requests_f32, other.requests_f32);
  acc(requests_fp16, other.requests_fp16);
  acc(requests_int8, other.requests_int8);
  const int64_t stamp =
      other.last_swap_steady_micros.load(std::memory_order_relaxed);
  int64_t current = last_swap_steady_micros.load(std::memory_order_relaxed);
  while (stamp > current && !last_swap_steady_micros.compare_exchange_weak(
                                current, stamp, std::memory_order_relaxed)) {
  }
  latency.MergeFrom(other.latency);
}

uint64_t Metrics::TotalRequests() const {
  return requests_ok.load(std::memory_order_relaxed) +
         requests_invalid_argument.load(std::memory_order_relaxed) +
         requests_not_found.load(std::memory_order_relaxed) +
         requests_deadline_exceeded.load(std::memory_order_relaxed) +
         requests_no_model.load(std::memory_order_relaxed) +
         requests_overloaded.load(std::memory_order_relaxed);
}

void Metrics::PrintTable(std::ostream& os) const {
  TablePrinter table({"metric", "value"});
  auto add = [&table](const std::string& name, uint64_t value) {
    table.NewRow();
    table.AddCell(name);
    table.AddCell(static_cast<int64_t>(value));
  };
  add("requests_total", TotalRequests());
  add("requests_ok", requests_ok.load(std::memory_order_relaxed));
  add("requests_invalid_argument",
      requests_invalid_argument.load(std::memory_order_relaxed));
  add("requests_not_found",
      requests_not_found.load(std::memory_order_relaxed));
  add("requests_deadline_exceeded",
      requests_deadline_exceeded.load(std::memory_order_relaxed));
  add("requests_no_model",
      requests_no_model.load(std::memory_order_relaxed));
  add("requests_overloaded",
      requests_overloaded.load(std::memory_order_relaxed));
  add("protocol_errors", protocol_errors.load(std::memory_order_relaxed));
  add("requests_f32", requests_f32.load(std::memory_order_relaxed));
  add("requests_fp16", requests_fp16.load(std::memory_order_relaxed));
  add("requests_int8", requests_int8.load(std::memory_order_relaxed));
  add("batches", batches.load(std::memory_order_relaxed));
  add("batched_requests",
      batched_requests.load(std::memory_order_relaxed));
  add("model_swaps", model_swaps.load(std::memory_order_relaxed));
  add("latency_p50_us_le", latency.QuantileUpperBoundMicros(0.50));
  add("latency_p95_us_le", latency.QuantileUpperBoundMicros(0.95));
  add("latency_p99_us_le", latency.QuantileUpperBoundMicros(0.99));
  table.NewRow();
  table.AddCell("latency_mean_us");
  table.AddCell(latency.MeanMicros(), 1);
  table.NewRow();
  table.AddCell("swap_age_seconds");
  table.AddCell(
      SwapAgeSeconds(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count()),
      1);
  table.PrintAligned(os);
}

}  // namespace plp::serve
