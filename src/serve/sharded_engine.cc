#include "serve/sharded_engine.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/check.h"

namespace plp::serve {

ShardedServingEngine::ShardedServingEngine(const ShardedConfig& config) {
  const int32_t n = std::max(config.num_shards, 1);
  shards_.reserve(static_cast<size_t>(n));
  for (int32_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<ServingEngine>(config.shard));
  }
}

int32_t ShardedServingEngine::ShardFor(int64_t user_id) const {
  // Same bit mixing as SessionStore::ShardFor so sequential user ids
  // spread evenly; reduced modulo the shard count (which need not be a
  // power of two).
  const uint64_t h = std::hash<int64_t>{}(user_id) * 0x9e3779b97f4a7c15ULL;
  return static_cast<int32_t>((h >> 32) % shards_.size());
}

Status ShardedServingEngine::PublishModel(const sgns::SgnsModel& model,
                                          uint64_t version) {
  // Build once (the expensive part: normalization, quantization, IVF
  // clustering), then hand each shard its own deep copy.
  PLP_ASSIGN_OR_RETURN(
      auto snapshot,
      ModelSnapshot::FromModel(model, version,
                               shards_.front()->config().snapshot));
  for (size_t s = 0; s < shards_.size(); ++s) {
    PLP_RETURN_IF_ERROR(shards_[s]->PublishSnapshot(
        s + 1 == shards_.size() ? std::move(snapshot)
                                : snapshot->Replicate()));
  }
  return Status::Ok();
}

Status ShardedServingEngine::PublishFile(const std::string& path,
                                         uint64_t version) {
  PLP_ASSIGN_OR_RETURN(
      auto snapshot,
      ModelSnapshot::FromFile(path, version,
                              shards_.front()->config().snapshot));
  for (size_t s = 0; s < shards_.size(); ++s) {
    PLP_RETURN_IF_ERROR(shards_[s]->PublishSnapshot(
        s + 1 == shards_.size() ? std::move(snapshot)
                                : snapshot->Replicate()));
  }
  return Status::Ok();
}

Status ShardedServingEngine::PublishSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("cannot publish a null snapshot");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    PLP_RETURN_IF_ERROR(shards_[s]->PublishSnapshot(
        s + 1 == shards_.size() ? std::move(snapshot)
                                : snapshot->Replicate()));
  }
  return Status::Ok();
}

Response ShardedServingEngine::Recommend(const Request& request) {
  return shards_[static_cast<size_t>(ShardFor(request.user_id))]->Recommend(
      request);
}

std::future<Response> ShardedServingEngine::SubmitAsync(Request request) {
  const size_t s = static_cast<size_t>(ShardFor(request.user_id));
  return shards_[s]->SubmitAsync(std::move(request));
}

void ShardedServingEngine::AggregateMetrics(Metrics& into) const {
  for (const auto& shard : shards_) {
    into.MergeFrom(shard->metrics());
  }
}

void ShardedServingEngine::PrintStats(std::ostream& os) const {
  Metrics total;
  AggregateMetrics(total);
  total.PrintTable(os);
}

}  // namespace plp::serve
