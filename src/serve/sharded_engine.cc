#include "serve/sharded_engine.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace plp::serve {

ShardedServingEngine::ShardedServingEngine(const ShardedConfig& config) {
  const int32_t n = std::max(config.num_shards, 1);
  shards_.reserve(static_cast<size_t>(n));
  for (int32_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<ServingEngine>(config.shard));
  }
}

int32_t ShardedServingEngine::ShardFor(int64_t user_id) const {
  // Same bit mixing as SessionStore::ShardFor so sequential user ids
  // spread evenly; reduced modulo the shard count (which need not be a
  // power of two).
  const uint64_t h = std::hash<int64_t>{}(user_id) * 0x9e3779b97f4a7c15ULL;
  return static_cast<int32_t>((h >> 32) % shards_.size());
}

Status ShardedServingEngine::PublishModel(const sgns::SgnsModel& model,
                                          uint64_t version) {
  // Build once (the expensive part: normalization, quantization, IVF
  // clustering), then hand each shard its own deep copy.
  PLP_ASSIGN_OR_RETURN(
      auto snapshot,
      ModelSnapshot::FromModel(model, version,
                               shards_.front()->config().snapshot));
  return PublishSnapshot(std::move(snapshot));
}

Status ShardedServingEngine::PublishFile(const std::string& path,
                                         uint64_t version) {
  PLP_ASSIGN_OR_RETURN(
      auto snapshot,
      ModelSnapshot::FromFile(path, version,
                              shards_.front()->config().snapshot));
  return PublishSnapshot(std::move(snapshot));
}

Status ShardedServingEngine::PublishSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("cannot publish a null snapshot");
  }
  // Verify the master copy and replicate for every shard BEFORE any shard
  // swaps, so a rejected artifact (or an injected fault) leaves the whole
  // fleet on the version it was already serving. A failure between the
  // per-shard swaps below can still leave shards briefly mixed across the
  // OLD and NEW versions — both validated, both published — which is the
  // documented consistency of a replicated fleet; an unvalidated snapshot
  // can never be one of them.
  PLP_RETURN_IF_ERROR(snapshot->Verify());
  std::vector<std::shared_ptr<const ModelSnapshot>> replicas;
  replicas.reserve(shards_.size());
  for (size_t s = 0; s + 1 < shards_.size(); ++s) {
    replicas.push_back(snapshot->Replicate());
  }
  replicas.push_back(std::move(snapshot));
  PLP_FAULT_POINT("publish.serve_swap");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PLP_RETURN_IF_ERROR(shards_[s]->PublishSnapshot(std::move(replicas[s])));
  }
  return Status::Ok();
}

Response ShardedServingEngine::Recommend(const Request& request) {
  return shards_[static_cast<size_t>(ShardFor(request.user_id))]->Recommend(
      request);
}

std::future<Response> ShardedServingEngine::SubmitAsync(Request request) {
  const size_t s = static_cast<size_t>(ShardFor(request.user_id));
  return shards_[s]->SubmitAsync(std::move(request));
}

std::vector<std::future<Response>> ShardedServingEngine::SubmitAsyncBatch(
    std::vector<Request> requests) {
  if (shards_.size() == 1) {
    return shards_[0]->SubmitAsyncBatch(std::move(requests));
  }
  // Partition by owning shard, remembering where each request came from so
  // the per-shard futures can be scattered back into submission order.
  std::vector<std::vector<Request>> per_shard(shards_.size());
  std::vector<std::vector<size_t>> origin(shards_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto s = static_cast<size_t>(ShardFor(requests[i].user_id));
    per_shard[s].push_back(std::move(requests[i]));
    origin[s].push_back(i);
  }
  std::vector<std::future<Response>> futures(requests.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    auto shard_futures = shards_[s]->SubmitAsyncBatch(std::move(per_shard[s]));
    for (size_t j = 0; j < shard_futures.size(); ++j) {
      futures[origin[s][j]] = std::move(shard_futures[j]);
    }
  }
  return futures;
}

void ShardedServingEngine::AggregateMetrics(Metrics& into) const {
  for (const auto& shard : shards_) {
    into.MergeFrom(shard->metrics());
  }
}

void ShardedServingEngine::PrintStats(std::ostream& os) const {
  Metrics total;
  AggregateMetrics(total);
  total.PrintTable(os);
}

}  // namespace plp::serve
