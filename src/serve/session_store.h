#ifndef PLP_SERVE_SESSION_STORE_H_
#define PLP_SERVE_SESSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace plp::serve {

/// Sharded, mutex-striped LRU of per-user recent check-in histories.
///
/// With the store holding ζ server-side, a request carries only
/// `(user_id, new_checkin)` instead of the full history — the shape a
/// mobile client actually sends. Users hash onto `num_shards` independent
/// shards (each its own mutex + LRU list), so concurrent appends from
/// different users rarely contend on the same lock.
///
/// Capacity is a hard bound on resident users: when a shard is full, the
/// least-recently-touched user in that shard is evicted. Histories are
/// trimmed to the newest `history_length` check-ins (the paper scores
/// F(ζ) over a short recent window, so old entries carry no signal).
class SessionStore {
 public:
  struct Options {
    size_t capacity = 100000;     ///< max resident users across all shards
    int32_t history_length = 16;  ///< newest check-ins kept per user
    size_t num_shards = 16;       ///< rounded up to a power of two
  };

  explicit SessionStore(const Options& options);

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// Appends one check-in to the user's history (creating the session if
  /// new, evicting an LRU user if the shard is full) and returns a copy of
  /// the updated history, oldest first.
  std::vector<int32_t> Append(int64_t user_id, int32_t location);

  /// The user's history (touches LRU recency), or nullopt if unknown.
  std::optional<std::vector<int32_t>> Get(int64_t user_id);

  /// Drops the user's session if present.
  void Erase(int64_t user_id);

  /// Resident users across all shards.
  size_t size() const;

  /// Total LRU evictions since construction.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }
  int32_t history_length() const { return history_length_; }

 private:
  struct Session {
    int64_t user_id = 0;
    std::vector<int32_t> history;  // oldest first, ≤ history_length entries
  };
  struct Shard {
    mutable std::mutex mu;
    // Most-recently-used at the front; evict from the back.
    std::list<Session> lru;
    std::unordered_map<int64_t, std::list<Session>::iterator> index;
  };

  Shard& ShardFor(int64_t user_id);

  int32_t history_length_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace plp::serve

#endif  // PLP_SERVE_SESSION_STORE_H_
