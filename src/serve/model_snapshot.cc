#include "serve/model_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/math_util.h"

namespace plp::serve {
namespace {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ChecksumOf(int32_t num_locations, int32_t dim,
                    std::span<const float> embeddings) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = Fnv1a64(&num_locations, sizeof(num_locations), hash);
  hash = Fnv1a64(&dim, sizeof(dim), hash);
  hash = Fnv1a64(embeddings.data(), embeddings.size() * sizeof(float), hash);
  return hash;
}

/// Scales each row to unit l2 norm in float32. Zero rows stay zero (they
/// score 0 against every profile, matching the training-side convention).
void NormalizeRows(std::vector<float>& m, int32_t num_rows, int32_t dim) {
  for (int32_t r = 0; r < num_rows; ++r) {
    float* row = m.data() + static_cast<size_t>(r) * dim;
    float sq = 0.0f;
    for (int32_t d = 0; d < dim; ++d) sq += row[d] * row[d];
    if (sq <= 0.0f) continue;
    const float inv = 1.0f / std::sqrt(sq);
    for (int32_t d = 0; d < dim; ++d) row[d] *= inv;
  }
}

/// Four-accumulator dot via the shared kernel (common/math_util) — the
/// same accumulation shape the original serve-local kernel used, so
/// snapshot scores are unchanged. A naive `s += a*b` loop serializes on
/// FP-add latency and is the difference between ~13k and >100k QPS
/// single-thread.
float Dot(const float* a, const float* b, int32_t n) {
  return DotKernel(a, b, static_cast<size_t>(n));
}

}  // namespace

ModelSnapshot::ModelSnapshot(int32_t num_locations, int32_t dim,
                             uint64_t version, std::vector<float> embeddings)
    : num_locations_(num_locations),
      dim_(dim),
      version_(version),
      checksum_(ChecksumOf(num_locations, dim, embeddings)),
      embeddings_(std::move(embeddings)) {}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromModel(
    const sgns::SgnsModel& model, uint64_t version) {
  if (model.num_locations() <= 0 || model.dim() <= 0) {
    return InvalidArgumentError("cannot snapshot an empty model");
  }
  const std::vector<double> normalized = model.NormalizedEmbeddings();
  std::vector<float> embeddings(normalized.begin(), normalized.end());
  NormalizeRows(embeddings, model.num_locations(), model.dim());
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(
      model.num_locations(), model.dim(), version, std::move(embeddings)));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromDeployed(
    const sgns::DeployedEmbeddings& deployed, uint64_t version) {
  if (deployed.num_locations <= 0 || deployed.dim <= 0) {
    return InvalidArgumentError("cannot snapshot empty embeddings");
  }
  const size_t expected = static_cast<size_t>(deployed.num_locations) *
                          static_cast<size_t>(deployed.dim);
  if (deployed.embeddings.size() != expected) {
    return InvalidArgumentError("embedding matrix shape mismatch");
  }
  std::vector<float> embeddings(deployed.embeddings.begin(),
                                deployed.embeddings.end());
  NormalizeRows(embeddings, deployed.num_locations, deployed.dim);
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(deployed.num_locations, deployed.dim, version,
                        std::move(embeddings)));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromFile(
    const std::string& path, uint64_t version) {
  auto model_or = sgns::LoadModel(path);
  if (model_or.ok()) return FromModel(*model_or, version);
  // A missing file will fail the same way again; only fall back when the
  // file exists but is not a full model (embeddings-only deployment).
  if (model_or.status().code() == StatusCode::kNotFound) {
    return model_or.status();
  }
  auto deployed_or = sgns::LoadEmbeddings(path);
  if (!deployed_or.ok()) {
    return InvalidArgumentError(
        path + " is neither a full model (" + model_or.status().message() +
        ") nor a deployment artifact (" + deployed_or.status().message() +
        ")");
  }
  return FromDeployed(*deployed_or, version);
}

std::vector<float> ModelSnapshot::Profile(
    std::span<const int32_t> recent) const {
  std::vector<float> profile(static_cast<size_t>(dim_), 0.0f);
  for (int32_t l : recent) {
    const float* row = embeddings_.data() + static_cast<size_t>(l) * dim_;
    for (int32_t d = 0; d < dim_; ++d) profile[d] += row[d];
  }
  float sq = 0.0f;
  for (float v : profile) sq += v * v;
  if (sq > 0.0f) {
    const float inv = 1.0f / std::sqrt(sq);
    for (float& v : profile) v *= inv;
  }
  return profile;
}

Status ModelSnapshot::ValidateHistory(std::span<const int32_t> recent) const {
  if (recent.empty()) return InvalidArgumentError("empty history");
  for (int32_t l : recent) {
    if (l < 0 || l >= num_locations_) {
      return InvalidArgumentError("location id " + std::to_string(l) +
                                  " outside the model vocabulary [0, " +
                                  std::to_string(num_locations_) + ")");
    }
  }
  return Status::Ok();
}

std::vector<ScoredLocation> TopKScores(const ModelSnapshot& snapshot,
                                       std::span<const float> profile,
                                       int32_t k,
                                       std::span<const int32_t> exclude) {
  const int32_t num_locations = snapshot.num_locations();
  const int32_t dim = snapshot.dim();
  if (k <= 0 || profile.size() != static_cast<size_t>(dim)) return {};

  auto is_excluded = [&exclude](int32_t l) {
    return std::find(exclude.begin(), exclude.end(), l) != exclude.end();
  };
  // Min-heap on (score asc, id desc): heap[0] is the worst kept candidate,
  // so each better-scoring row replaces it in O(log k).
  auto worse = [](const ScoredLocation& a, const ScoredLocation& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.location > b.location;
  };
  std::vector<ScoredLocation> heap;
  heap.reserve(static_cast<size_t>(k));

  const float* matrix = snapshot.embeddings().data();
  for (int32_t l = 0; l < num_locations; ++l) {
    const float* row = matrix + static_cast<size_t>(l) * dim;
    const ScoredLocation candidate{l, Dot(row, profile.data(), dim)};
    if (static_cast<int32_t>(heap.size()) < k) {
      if (is_excluded(l)) continue;
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), [&](const auto& a,
                                                   const auto& b) {
        return worse(b, a);  // max-heap of "worseness" == min-heap of score
      });
    } else if (worse(heap.front(), candidate) && !is_excluded(l)) {
      std::pop_heap(heap.begin(), heap.end(),
                    [&](const auto& a, const auto& b) { return worse(b, a); });
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(),
                     [&](const auto& a, const auto& b) { return worse(b, a); });
    }
  }
  std::sort(heap.begin(), heap.end(),
            [&](const ScoredLocation& a, const ScoredLocation& b) {
              return worse(b, a);  // best first
            });
  return heap;
}

}  // namespace plp::serve
