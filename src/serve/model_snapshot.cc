#include "serve/model_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/math_util.h"

namespace plp::serve {
namespace {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ChecksumOf(int32_t num_locations, int32_t dim,
                    std::span<const float> embeddings) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = Fnv1a64(&num_locations, sizeof(num_locations), hash);
  hash = Fnv1a64(&dim, sizeof(dim), hash);
  hash = Fnv1a64(embeddings.data(), embeddings.size() * sizeof(float), hash);
  return hash;
}

/// Scales each row to unit l2 norm in float32. Zero rows stay zero (they
/// score 0 against every profile, matching the training-side convention).
void NormalizeRows(std::vector<float>& m, int32_t num_rows, int32_t dim) {
  for (int32_t r = 0; r < num_rows; ++r) {
    float* row = m.data() + static_cast<size_t>(r) * dim;
    float sq = 0.0f;
    for (int32_t d = 0; d < dim; ++d) sq += row[d] * row[d];
    if (sq <= 0.0f) continue;
    const float inv = 1.0f / std::sqrt(sq);
    for (int32_t d = 0; d < dim; ++d) row[d] *= inv;
  }
}

/// Four-accumulator dot via the shared kernel (common/math_util) — the
/// same accumulation shape the original serve-local kernel used, so
/// snapshot scores are unchanged. A naive `s += a*b` loop serializes on
/// FP-add latency and is the difference between ~13k and >100k QPS
/// single-thread.
float Dot(const float* a, const float* b, int32_t n) {
  return DotKernel(a, b, static_cast<size_t>(n));
}

/// The shared top-k heap: min-heap on (score asc, id desc), so heap[0] is
/// the worst kept candidate and each better-scoring row replaces it in
/// O(log k). The comparison and offer order are exactly the original
/// exact-scan's, so the float32 path keeps its bitwise behavior.
struct TopKHeap {
  explicit TopKHeap(int32_t k_in, std::span<const int32_t> exclude_in)
      : k(k_in), exclude(exclude_in) {
    heap.reserve(static_cast<size_t>(k));
  }

  static bool Worse(const ScoredLocation& a, const ScoredLocation& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.location > b.location;
  }

  bool IsExcluded(int32_t l) const {
    return std::find(exclude.begin(), exclude.end(), l) != exclude.end();
  }

  void Offer(const ScoredLocation& candidate) {
    auto cmp = [](const ScoredLocation& a, const ScoredLocation& b) {
      return Worse(b, a);  // max-heap of "worseness" == min-heap of score
    };
    if (static_cast<int32_t>(heap.size()) < k) {
      if (IsExcluded(candidate.location)) return;
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (Worse(heap.front(), candidate) &&
               !IsExcluded(candidate.location)) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }

  std::vector<ScoredLocation> Finish() {
    std::sort(heap.begin(), heap.end(),
              [](const ScoredLocation& a, const ScoredLocation& b) {
                return Worse(b, a);  // best first
              });
    return std::move(heap);
  }

  int32_t k;
  std::span<const int32_t> exclude;
  std::vector<ScoredLocation> heap;
};

}  // namespace

const char* FormatName(SnapshotFormat format) {
  switch (format) {
    case SnapshotFormat::kFloat32:
      return "f32";
    case SnapshotFormat::kFloat16:
      return "fp16";
    case SnapshotFormat::kInt8:
      return "int8";
  }
  return "unknown";
}

Result<SnapshotFormat> ParseSnapshotFormat(const std::string& name) {
  if (name == "f32" || name == "float32") return SnapshotFormat::kFloat32;
  if (name == "fp16" || name == "float16") return SnapshotFormat::kFloat16;
  if (name == "int8") return SnapshotFormat::kInt8;
  return InvalidArgumentError("unknown snapshot format '" + name +
                              "' (expected f32, fp16, or int8)");
}

ModelSnapshot::ModelSnapshot(int32_t num_locations, int32_t dim,
                             uint64_t version, std::vector<float> embeddings)
    : num_locations_(num_locations),
      dim_(dim),
      version_(version),
      checksum_(ChecksumOf(num_locations, dim, embeddings)),
      embeddings_(std::move(embeddings)) {}

void ModelSnapshot::ApplyOptions(const SnapshotOptions& options) {
  // The IVF index clusters the float32 matrix, so build it before the
  // quantization below can drop that matrix.
  if (options.build_ivf) {
    ivf_ = IvfIndex::Build(embeddings_.data(), num_locations_, dim_,
                           options.ivf);
  }
  if (options.format == SnapshotFormat::kFloat32) {
    if (ivf_) BuildPackedPayload();
    return;
  }
  format_ = options.format;
  const size_t count = embeddings_.size();
  if (format_ == SnapshotFormat::kFloat16) {
    half_.resize(count);
    for (size_t i = 0; i < count; ++i) half_[i] = FloatToHalf(embeddings_[i]);
  } else {
    quant_.resize(count);
    row_scale_.resize(static_cast<size_t>(num_locations_));
    for (int32_t r = 0; r < num_locations_; ++r) {
      const float* row = embeddings_.data() + static_cast<size_t>(r) * dim_;
      float amax = 0.0f;
      for (int32_t d = 0; d < dim_; ++d) {
        amax = std::max(amax, std::fabs(row[d]));
      }
      const float scale = amax > 0.0f ? amax / 127.0f : 0.0f;
      row_scale_[static_cast<size_t>(r)] = scale;
      int8_t* q = quant_.data() + static_cast<size_t>(r) * dim_;
      if (scale == 0.0f) {
        std::fill_n(q, dim_, int8_t{0});
        continue;
      }
      const float inv = 1.0f / scale;
      for (int32_t d = 0; d < dim_; ++d) {
        const long v = std::lroundf(row[d] * inv);
        q[d] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
      }
    }
  }
  checksum_ = ComputeChecksum();
  embeddings_.clear();
  embeddings_.shrink_to_fit();
  if (ivf_) BuildPackedPayload();
}

uint64_t ModelSnapshot::ComputeChecksum() const {
  if (format_ == SnapshotFormat::kFloat32) {
    return ChecksumOf(num_locations_, dim_, embeddings_);
  }
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = Fnv1a64(&num_locations_, sizeof(num_locations_), hash);
  hash = Fnv1a64(&dim_, sizeof(dim_), hash);
  hash = Fnv1a64(&format_, sizeof(format_), hash);
  if (format_ == SnapshotFormat::kFloat16) {
    hash = Fnv1a64(half_.data(), half_.size() * sizeof(uint16_t), hash);
  } else {
    hash = Fnv1a64(quant_.data(), quant_.size() * sizeof(int8_t), hash);
    hash =
        Fnv1a64(row_scale_.data(), row_scale_.size() * sizeof(float), hash);
  }
  return hash;
}

Status ModelSnapshot::Verify() const {
  PLP_FAULT_POINT("snapshot.verify");
  if (num_locations_ <= 0 || dim_ <= 0) {
    return InternalError("corrupt snapshot: non-positive shape (" +
                         std::to_string(num_locations_) + " x " +
                         std::to_string(dim_) + ")");
  }
  const size_t count =
      static_cast<size_t>(num_locations_) * static_cast<size_t>(dim_);
  bool shape_ok = false;
  switch (format_) {
    case SnapshotFormat::kFloat32:
      shape_ok = embeddings_.size() == count;
      break;
    case SnapshotFormat::kFloat16:
      shape_ok = half_.size() == count && embeddings_.empty();
      break;
    case SnapshotFormat::kInt8:
      shape_ok = quant_.size() == count &&
                 row_scale_.size() == static_cast<size_t>(num_locations_) &&
                 embeddings_.empty();
      break;
  }
  if (!shape_ok) {
    return InternalError(
        "corrupt snapshot: payload size does not match the " +
        std::string(FormatName(format_)) + " shape " +
        std::to_string(num_locations_) + " x " + std::to_string(dim_));
  }
  if (const uint64_t actual = ComputeChecksum(); actual != checksum_) {
    return InternalError("corrupt snapshot: checksum mismatch (stamped " +
                         std::to_string(checksum_) + ", recomputed " +
                         std::to_string(actual) + ")");
  }
  return Status::Ok();
}

void ModelSnapshot::BuildPackedPayload() {
  const size_t dim = static_cast<size_t>(dim_);
  const size_t count = static_cast<size_t>(num_locations_) * dim;
  switch (format_) {
    case SnapshotFormat::kFloat32:
      packed_f32_.resize(count);
      break;
    case SnapshotFormat::kFloat16:
      packed_half_.resize(count);
      break;
    case SnapshotFormat::kInt8:
      packed_quant_.resize(count);
      packed_scale_.resize(static_cast<size_t>(num_locations_));
      break;
  }
  size_t pos = 0;
  for (int32_t c = 0; c < ivf_->num_clusters(); ++c) {
    for (const int32_t id : ivf_->ClusterMembers(c)) {
      const size_t src = static_cast<size_t>(id) * dim;
      const size_t dst = pos * dim;
      switch (format_) {
        case SnapshotFormat::kFloat32:
          std::copy_n(embeddings_.data() + src, dim, packed_f32_.data() + dst);
          break;
        case SnapshotFormat::kFloat16:
          std::copy_n(half_.data() + src, dim, packed_half_.data() + dst);
          break;
        case SnapshotFormat::kInt8:
          std::copy_n(quant_.data() + src, dim, packed_quant_.data() + dst);
          packed_scale_[pos] = row_scale_[static_cast<size_t>(id)];
          break;
      }
      ++pos;
    }
  }
  PLP_CHECK_EQ(pos, static_cast<size_t>(num_locations_));
}

size_t ModelSnapshot::memory_bytes() const {
  const size_t packed = packed_f32_.size() * sizeof(float) +
                        packed_half_.size() * sizeof(uint16_t) +
                        packed_quant_.size() * sizeof(int8_t) +
                        packed_scale_.size() * sizeof(float);
  switch (format_) {
    case SnapshotFormat::kFloat32:
      return embeddings_.size() * sizeof(float) + packed;
    case SnapshotFormat::kFloat16:
      return half_.size() * sizeof(uint16_t) + packed;
    case SnapshotFormat::kInt8:
      return quant_.size() * sizeof(int8_t) +
             row_scale_.size() * sizeof(float) + packed;
  }
  return 0;
}

void ModelSnapshot::DequantizeRow(int32_t location,
                                  std::span<float> out) const {
  PLP_CHECK_EQ(out.size(), static_cast<size_t>(dim_));
  const size_t offset = static_cast<size_t>(location) * dim_;
  switch (format_) {
    case SnapshotFormat::kFloat32:
      std::copy_n(embeddings_.data() + offset, dim_, out.data());
      return;
    case SnapshotFormat::kFloat16:
      for (int32_t d = 0; d < dim_; ++d) {
        out[static_cast<size_t>(d)] = HalfToFloat(half_[offset + d]);
      }
      return;
    case SnapshotFormat::kInt8: {
      const float scale = row_scale_[static_cast<size_t>(location)];
      for (int32_t d = 0; d < dim_; ++d) {
        out[static_cast<size_t>(d)] =
            scale * static_cast<float>(quant_[offset + d]);
      }
      return;
    }
  }
}

float ModelSnapshot::ScorePackedRow(int32_t pos, const float* profile) const {
  const size_t offset = static_cast<size_t>(pos) * dim_;
  switch (format_) {
    case SnapshotFormat::kFloat32:
      return Dot(packed_f32_.data() + offset, profile, dim_);
    case SnapshotFormat::kFloat16:
      return DotF16Kernel(packed_half_.data() + offset, profile,
                          static_cast<size_t>(dim_));
    case SnapshotFormat::kInt8:
      return packed_scale_[static_cast<size_t>(pos)] *
             DotI8Kernel(packed_quant_.data() + offset, profile,
                         static_cast<size_t>(dim_));
  }
  return 0.0f;
}

float ModelSnapshot::ScoreRow(int32_t location, const float* profile) const {
  const size_t offset = static_cast<size_t>(location) * dim_;
  switch (format_) {
    case SnapshotFormat::kFloat32:
      return Dot(embeddings_.data() + offset, profile, dim_);
    case SnapshotFormat::kFloat16:
      return DotF16Kernel(half_.data() + offset, profile,
                          static_cast<size_t>(dim_));
    case SnapshotFormat::kInt8:
      return row_scale_[static_cast<size_t>(location)] *
             DotI8Kernel(quant_.data() + offset, profile,
                         static_cast<size_t>(dim_));
  }
  return 0.0f;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Replicate() const {
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(*this));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromModel(
    const sgns::SgnsModel& model, uint64_t version) {
  return FromModel(model, version, SnapshotOptions{});
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromModel(
    const sgns::SgnsModel& model, uint64_t version,
    const SnapshotOptions& options) {
  if (model.num_locations() <= 0 || model.dim() <= 0) {
    return InvalidArgumentError("cannot snapshot an empty model");
  }
  const std::vector<double> normalized = model.NormalizedEmbeddings();
  std::vector<float> embeddings(normalized.begin(), normalized.end());
  NormalizeRows(embeddings, model.num_locations(), model.dim());
  auto snapshot = std::shared_ptr<ModelSnapshot>(new ModelSnapshot(
      model.num_locations(), model.dim(), version, std::move(embeddings)));
  snapshot->ApplyOptions(options);
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromDeployed(
    const sgns::DeployedEmbeddings& deployed, uint64_t version) {
  return FromDeployed(deployed, version, SnapshotOptions{});
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromDeployed(
    const sgns::DeployedEmbeddings& deployed, uint64_t version,
    const SnapshotOptions& options) {
  if (deployed.num_locations <= 0 || deployed.dim <= 0) {
    return InvalidArgumentError("cannot snapshot empty embeddings");
  }
  const size_t expected = static_cast<size_t>(deployed.num_locations) *
                          static_cast<size_t>(deployed.dim);
  if (deployed.embeddings.size() != expected) {
    return InvalidArgumentError("embedding matrix shape mismatch");
  }
  std::vector<float> embeddings(deployed.embeddings.begin(),
                                deployed.embeddings.end());
  NormalizeRows(embeddings, deployed.num_locations, deployed.dim);
  auto snapshot = std::shared_ptr<ModelSnapshot>(
      new ModelSnapshot(deployed.num_locations, deployed.dim, version,
                        std::move(embeddings)));
  snapshot->ApplyOptions(options);
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromFile(
    const std::string& path, uint64_t version) {
  return FromFile(path, version, SnapshotOptions{});
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromFile(
    const std::string& path, uint64_t version,
    const SnapshotOptions& options) {
  auto model_or = sgns::LoadModel(path);
  if (model_or.ok()) return FromModel(*model_or, version, options);
  // A missing file will fail the same way again; only fall back when the
  // file exists but is not a full model (embeddings-only deployment).
  if (model_or.status().code() == StatusCode::kNotFound) {
    return model_or.status();
  }
  auto deployed_or = sgns::LoadEmbeddings(path);
  if (!deployed_or.ok()) {
    return InvalidArgumentError(
        path + " is neither a full model (" + model_or.status().message() +
        ") nor a deployment artifact (" + deployed_or.status().message() +
        ")");
  }
  return FromDeployed(*deployed_or, version, options);
}

std::vector<float> ModelSnapshot::Profile(
    std::span<const int32_t> recent) const {
  std::vector<float> profile(static_cast<size_t>(dim_), 0.0f);
  if (format_ == SnapshotFormat::kFloat32) {
    for (int32_t l : recent) {
      const float* row = embeddings_.data() + static_cast<size_t>(l) * dim_;
      for (int32_t d = 0; d < dim_; ++d) profile[d] += row[d];
    }
  } else {
    std::vector<float> row(static_cast<size_t>(dim_));
    for (int32_t l : recent) {
      DequantizeRow(l, row);
      for (int32_t d = 0; d < dim_; ++d) {
        profile[static_cast<size_t>(d)] += row[static_cast<size_t>(d)];
      }
    }
  }
  float sq = 0.0f;
  for (float v : profile) sq += v * v;
  if (sq > 0.0f) {
    const float inv = 1.0f / std::sqrt(sq);
    for (float& v : profile) v *= inv;
  }
  return profile;
}

Status ModelSnapshot::ValidateHistory(std::span<const int32_t> recent) const {
  if (recent.empty()) return InvalidArgumentError("empty history");
  for (int32_t l : recent) {
    if (l < 0 || l >= num_locations_) {
      return InvalidArgumentError("location id " + std::to_string(l) +
                                  " outside the model vocabulary [0, " +
                                  std::to_string(num_locations_) + ")");
    }
  }
  return Status::Ok();
}

std::vector<ScoredLocation> TopKScores(const ModelSnapshot& snapshot,
                                       std::span<const float> profile,
                                       int32_t k,
                                       std::span<const int32_t> exclude) {
  const int32_t num_locations = snapshot.num_locations();
  const int32_t dim = snapshot.dim();
  if (k <= 0 || profile.size() != static_cast<size_t>(dim)) return {};

  TopKHeap heap(k, exclude);
  if (snapshot.format() == SnapshotFormat::kFloat32) {
    // Direct matrix walk, identical float ops and offer order to the
    // original float32-only scan — this path is pinned bitwise.
    const float* matrix = snapshot.embeddings().data();
    for (int32_t l = 0; l < num_locations; ++l) {
      const float* row = matrix + static_cast<size_t>(l) * dim;
      heap.Offer(ScoredLocation{l, Dot(row, profile.data(), dim)});
    }
  } else {
    for (int32_t l = 0; l < num_locations; ++l) {
      heap.Offer(ScoredLocation{l, snapshot.ScoreRow(l, profile.data())});
    }
  }
  return heap.Finish();
}

std::vector<ScoredLocation> ApproxTopKScores(const ModelSnapshot& snapshot,
                                             std::span<const float> profile,
                                             int32_t k, int32_t nprobe,
                                             std::span<const int32_t> exclude) {
  const IvfIndex* ivf = snapshot.ivf();
  if (ivf == nullptr) return TopKScores(snapshot, profile, k, exclude);
  const int32_t dim = snapshot.dim();
  if (k <= 0 || profile.size() != static_cast<size_t>(dim)) return {};
  if (nprobe <= 0) nprobe = ivf->default_nprobe();

  // Walk the probed posting lists through the cluster-ordered payload:
  // each probed cluster is one contiguous packed range, so the pruned
  // scan streams memory sequentially (hardware-prefetchable) instead of
  // chasing one scattered cache line per row — the difference between a
  // latency-bound and a bandwidth-bound scan.
  std::vector<int32_t> clusters;
  ivf->TopClusters(profile, nprobe, clusters);
  TopKHeap heap(k, exclude);
  for (int32_t c : clusters) {
    const std::span<const int32_t> members = ivf->ClusterMembers(c);
    const int32_t base = ivf->ClusterOffset(c);
    for (size_t i = 0; i < members.size(); ++i) {
      heap.Offer(ScoredLocation{
          members[i],
          snapshot.ScorePackedRow(base + static_cast<int32_t>(i),
                                  profile.data())});
    }
  }
  return heap.Finish();
}

}  // namespace plp::serve
