#ifndef PLP_SERVE_METRICS_H_
#define PLP_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>

namespace plp::serve {

/// Fixed-bucket latency histogram with lock-free recording.
///
/// Buckets are powers of two in microseconds: bucket i counts samples in
/// [2^i, 2^(i+1)) µs (bucket 0 also takes 0 µs), topping out at ~34 s.
/// Record is a single relaxed fetch_add on the bucket counter, so the hot
/// path never takes a lock; quantiles are answered from the bucket counts
/// with upper-bound rounding (a p99 of "≤ 128 µs" style resolution, which
/// is what a serving dashboard needs).
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 36;

  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Arithmetic mean in microseconds (0 when empty).
  double MeanMicros() const;

  /// Upper bound of the bucket holding the q-quantile sample, q in [0, 1].
  /// Returns 0 when empty.
  uint64_t QuantileUpperBoundMicros(double q) const;

  uint64_t BucketCount(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  /// Adds another histogram's buckets/count/sum into this one (relaxed
  /// reads of a live histogram — aggregation is a monitoring view, not a
  /// linearizable snapshot).
  void MergeFrom(const LatencyHistogram& other);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// Serving-side counters + request latency histogram. All mutation is a
/// relaxed atomic op; `PrintTable` renders a dashboard-style dump through
/// the repo's TablePrinter (aligned for humans, CSV-convertible).
class Metrics {
 public:
  // Counter taxonomy: every finished request increments exactly one of
  // {ok, invalid_argument, not_found, deadline_exceeded, no_model,
  // overloaded}.
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_invalid_argument{0};
  std::atomic<uint64_t> requests_not_found{0};       ///< unknown session
  std::atomic<uint64_t> requests_deadline_exceeded{0};
  std::atomic<uint64_t> requests_no_model{0};  ///< nothing published yet
  std::atomic<uint64_t> requests_overloaded{0};  ///< shed: queue was full
  std::atomic<uint64_t> batches{0};       ///< micro-batches executed
  std::atomic<uint64_t> batched_requests{0};  ///< requests inside batches
  std::atomic<uint64_t> model_swaps{0};
  /// Successful recommendations broken out by the snapshot format that
  /// scored them (f32 / fp16 / int8) — sums to requests_ok. Makes a
  /// quantization rollout observable: a dashboard can watch traffic move
  /// between formats across hot swaps.
  std::atomic<uint64_t> requests_f32{0};
  std::atomic<uint64_t> requests_fp16{0};
  std::atomic<uint64_t> requests_int8{0};
  /// steady_clock microsecond stamp of the latest Publish (0 = never).
  /// swap_age_seconds in the STATS table derives from it, so snapshot
  /// freshness is observable without scraping logs.
  std::atomic<int64_t> last_swap_steady_micros{0};
  /// Wire-level garbage that never became a Request (unknown command,
  /// unparseable fields, oversized line). Counted by the protocol frontend
  /// (plp_serve), not the engine, and not part of TotalRequests.
  std::atomic<uint64_t> protocol_errors{0};

  LatencyHistogram latency;

  uint64_t TotalRequests() const;

  /// Seconds since the latest Publish, or -1 when nothing was ever
  /// published. `now_micros` is a steady_clock microsecond reading so
  /// callers (and tests) control the clock.
  double SwapAgeSeconds(int64_t now_micros) const;

  /// Records a Publish: bumps model_swaps and stamps the swap time.
  void RecordSwap(int64_t now_micros);

  /// Accumulates another Metrics into this one (counters and histogram
  /// buckets added; the freshest swap stamp wins). The sharded engine
  /// aggregates per-shard metrics into one STATS view with this.
  void MergeFrom(const Metrics& other);

  /// Aligned table of every counter plus p50/p95/p99/mean latency.
  void PrintTable(std::ostream& os) const;
};

}  // namespace plp::serve

#endif  // PLP_SERVE_METRICS_H_
