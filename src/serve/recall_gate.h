#ifndef PLP_SERVE_RECALL_GATE_H_
#define PLP_SERVE_RECALL_GATE_H_

#include <cstdint>

#include "serve/model_snapshot.h"

namespace plp::serve {

/// Probe schedule for MeasureRecallAtK. Queries are history-derived
/// profiles (the shape the serving path actually scores) generated from a
/// seeded RNG, so the same snapshot pair always measures the same recall —
/// a gate that flickers across runs is a gate nobody trusts.
struct RecallProbe {
  int32_t num_queries = 128;
  int32_t k = 10;
  int32_t history_length = 5;
  uint64_t seed = 18;
  /// Candidate-side probe width when it carries an IVF index; 0 uses the
  /// index default (the width the ≥ 0.99 recall contract is tuned for).
  int32_t nprobe = 0;
};

/// Average recall@k of `candidate` against `reference` over the probe's
/// synthetic queries: for each query the reference answers with its exact
/// scan and the candidate answers the way the engine would serve it
/// (IVF-pruned when indexed, exact otherwise, dequantized kernels for
/// quantized formats); recall is the fraction of reference ids the
/// candidate returned. This is the same machinery as the IVF recall gate
/// in tests/serve/ivf_index_test.cc, factored out so the publish
/// validation gate measures candidates against the float32 reference
/// before they can reach a registry.
///
/// Both snapshots must share the vocabulary size. k is clamped to the
/// vocabulary.
double MeasureRecallAtK(const ModelSnapshot& candidate,
                        const ModelSnapshot& reference,
                        const RecallProbe& probe);

}  // namespace plp::serve

#endif  // PLP_SERVE_RECALL_GATE_H_
