#ifndef PLP_SERVE_SHARDED_ENGINE_H_
#define PLP_SERVE_SHARDED_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <ostream>
#include <vector>

#include "serve/serving_engine.h"

namespace plp::serve {

struct ShardedConfig {
  /// Engine shards (min 1). One per core is the intended deployment: each
  /// shard is a self-contained ServingEngine whose readers never touch
  /// another shard's registry, sessions, or metrics.
  int32_t num_shards = 4;
  /// Per-shard configuration. `num_threads` is the pool size *per shard*,
  /// so a typical sharded deployment uses num_threads = 1.
  ServingConfig shard;
};

/// Shared-nothing scale-out of ServingEngine across cores.
///
/// Every shard owns a full engine: its own ModelRegistry holding its own
/// immutable snapshot *replica* (deep copy — no shared refcount control
/// block, no shared cache lines between shards), its own SessionStore and
/// Metrics. Requests route by user id (the same multiplicative hash the
/// session store uses internally), so a user's session always lives on
/// exactly one shard and the per-shard LRU bound still holds.
///
/// Publishing builds the snapshot once, then replicates and swaps it into
/// each shard in turn. Each shard's swap is the same atomic
/// load-new/swap/drain-old it always was; during a publish, different
/// shards may briefly serve different versions — exactly the consistency
/// a replicated fleet of independent servers would give, made explicit.
class ShardedServingEngine {
 public:
  explicit ShardedServingEngine(const ShardedConfig& config);

  ShardedServingEngine(const ShardedServingEngine&) = delete;
  ShardedServingEngine& operator=(const ShardedServingEngine&) = delete;

  /// Builds one snapshot from `model` (per the shard config's
  /// SnapshotOptions) and publishes a replica to every shard.
  Status PublishModel(const sgns::SgnsModel& model, uint64_t version);

  /// Loads a model file of either format and publishes replicas.
  Status PublishFile(const std::string& path, uint64_t version);

  /// Publishes replicas of an already-built snapshot (any format — this
  /// is how a rollout moves a live fleet between quantization formats
  /// without reconstructing engines).
  Status PublishSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Synchronous execution on the owning shard (caller's thread).
  Response Recommend(const Request& request);

  /// Async submission onto the owning shard's pool.
  std::future<Response> SubmitAsync(Request request);

  /// Routes each request to its owning shard, then submits every shard's
  /// share as ONE batched pool push (one condvar wakeup per shard touched
  /// instead of one per request). Future i answers request i.
  std::vector<std::future<Response>> SubmitAsyncBatch(
      std::vector<Request> requests);

  size_t num_shards() const { return shards_.size(); }
  int32_t ShardFor(int64_t user_id) const;
  ServingEngine& shard(size_t i) { return *shards_[i]; }
  const ServingEngine& shard(size_t i) const { return *shards_[i]; }

  /// Sums every shard's counters and latency histogram into `into`
  /// (relaxed reads; a monitoring view, not a linearizable snapshot).
  void AggregateMetrics(Metrics& into) const;

  /// Aggregated STATS table across all shards.
  void PrintStats(std::ostream& os) const;

 private:
  std::vector<std::unique_ptr<ServingEngine>> shards_;
};

}  // namespace plp::serve

#endif  // PLP_SERVE_SHARDED_ENGINE_H_
