#include "serve/session_store.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/check.h"

namespace plp::serve {

SessionStore::SessionStore(const Options& options)
    : history_length_(options.history_length) {
  PLP_CHECK_GT(options.capacity, 0u);
  PLP_CHECK_GT(options.history_length, 0);
  PLP_CHECK_GT(options.num_shards, 0u);
  const size_t shards = std::bit_ceil(
      std::min(options.num_shards, options.capacity));
  shards_ = std::vector<Shard>(shards);
  // Round per-shard capacity up so the aggregate bound is ≥ the requested
  // capacity even when it doesn't divide evenly.
  per_shard_capacity_ = (options.capacity + shards - 1) / shards;
}

SessionStore::Shard& SessionStore::ShardFor(int64_t user_id) {
  // Mix the bits so sequential user ids spread across shards.
  const uint64_t h =
      std::hash<int64_t>{}(user_id) * 0x9e3779b97f4a7c15ULL;
  return shards_[(h >> 32) & (shards_.size() - 1)];
}

std::vector<int32_t> SessionStore::Append(int64_t user_id,
                                          int32_t location) {
  Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(user_id);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().user_id);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Session{user_id, {}});
    shard.lru.front().history.reserve(
        static_cast<size_t>(history_length_));
    shard.index[user_id] = shard.lru.begin();
  }
  Session& session = shard.lru.front();
  if (static_cast<int32_t>(session.history.size()) >= history_length_) {
    session.history.erase(session.history.begin());
  }
  session.history.push_back(location);
  return session.history;
}

std::optional<std::vector<int32_t>> SessionStore::Get(int64_t user_id) {
  Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(user_id);
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->history;
}

void SessionStore::Erase(int64_t user_id) {
  Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(user_id);
  if (it == shard.index.end()) return;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

size_t SessionStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace plp::serve
