#ifndef PLP_SERVE_MODEL_REGISTRY_H_
#define PLP_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/model_snapshot.h"

namespace plp::serve {

/// Atomic hot-swap point between training and serving.
///
/// The live snapshot lives in a `std::atomic<std::shared_ptr<const
/// ModelSnapshot>>`: readers `Current()` (an acquire load + refcount bump,
/// no mutex), score against their pinned copy, and drop it; `Publish`
/// release-stores the replacement. The drained old snapshot is freed by
/// whichever reader releases the last reference — swaps never block the
/// request path and never invalidate an in-flight score.
///
/// This is the load-new / swap / drain-old lifecycle: a freshly trained
/// model is built into a snapshot off to the side (the expensive part),
/// published in O(1), and the old matrix drains as requests complete.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  explicit ModelRegistry(std::shared_ptr<const ModelSnapshot> initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The live snapshot, or nullptr before the first Publish. The returned
  /// pointer stays valid for as long as the caller holds it, regardless of
  /// concurrent swaps.
  std::shared_ptr<const ModelSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Swaps in `snapshot` (must be non-null) and returns the registry
  /// generation (1 for the first publish). Readers observe either the old
  /// or the new snapshot, never a mix.
  uint64_t Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The safe publish path: runs `snapshot->Verify()` (shape + checksum
  /// recompute) BEFORE the swap and returns the failure as a Status — the
  /// installed snapshot, the generation counter, and every in-flight
  /// reader are untouched on rejection. Null is rejected the same way
  /// (InvalidArgument), never asserted on: a serving process must survive
  /// a bad artifact, not die on it. Returns the new generation on success.
  Result<uint64_t> PublishVerified(
      std::shared_ptr<const ModelSnapshot> snapshot);

  /// Number of successful Publish calls.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  bool has_model() const { return Current() != nullptr; }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{nullptr};
  std::atomic<uint64_t> generation_{0};
};

}  // namespace plp::serve

#endif  // PLP_SERVE_MODEL_REGISTRY_H_
