#include "serve/serving_engine.h"

#include <algorithm>
#include <latch>
#include <utility>

#include "common/fault_injection.h"

namespace plp::serve {
namespace {

using Clock = std::chrono::steady_clock;

int64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

Clock::time_point ResolveArrival(const Request& request,
                                 Clock::time_point now) {
  return request.arrival == Clock::time_point{} ? now : request.arrival;
}

int64_t SteadyMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServingEngine::ServingEngine(const ServingConfig& config)
    : config_(config),
      sessions_(config.sessions),
      pool_(static_cast<size_t>(std::max(config.num_threads, 1))) {
  config_.num_threads = std::max(config.num_threads, 1);
  config_.max_batch = std::max(config.max_batch, 1);
}

Status ServingEngine::PublishModel(const sgns::SgnsModel& model,
                                   uint64_t version) {
  PLP_ASSIGN_OR_RETURN(
      auto snapshot,
      ModelSnapshot::FromModel(model, version, config_.snapshot));
  return PublishSnapshot(std::move(snapshot));
}

Status ServingEngine::PublishFile(const std::string& path,
                                  uint64_t version) {
  PLP_ASSIGN_OR_RETURN(auto snapshot,
                       ModelSnapshot::FromFile(path, version,
                                               config_.snapshot));
  return PublishSnapshot(std::move(snapshot));
}

Status ServingEngine::PublishSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  // Verify-then-swap: a snapshot that fails its integrity gate is
  // rejected here, before readers can ever observe it — the installed
  // snapshot keeps serving and the swap-age clock keeps ticking against
  // the OLD swap (the staleness is real and must be visible).
  PLP_ASSIGN_OR_RETURN(uint64_t generation,
                       registry_.PublishVerified(std::move(snapshot)));
  (void)generation;
  metrics_.RecordSwap(SteadyMicrosNow());
  return Status::Ok();
}

Response ServingEngine::Execute(
    const Request& request,
    const std::shared_ptr<const ModelSnapshot>& snapshot,
    Clock::time_point now) {
  Response response;
  if (FaultInjection::Armed()) {
    // "serve.execute": tests inject queue residency (kDelay) here to drive
    // the queued-expired path deterministically. The clock is re-read so
    // the injected delay counts against the request's deadline, exactly as
    // real queue time would.
    if (Status s = FaultInjection::Hit("serve.execute"); !s.ok()) {
      response.status = std::move(s);
      return response;
    }
    now = Clock::now();
  }
  if (snapshot == nullptr) {
    response.status = FailedPreconditionError("no model published");
    return response;
  }
  response.model_version = snapshot->version();
  const Clock::time_point arrival = ResolveArrival(request, now);
  if (request.timeout_micros > 0 &&
      MicrosBetween(arrival, now) > request.timeout_micros) {
    response.status = DeadlineExceededError("request deadline elapsed");
    return response;
  }
  if (request.k <= 0) {
    response.status = InvalidArgumentError("k must be positive");
    return response;
  }
  // No silent clamp: asking for more candidates than the vocabulary holds
  // is a caller bug (or a stale client after a swap to a smaller model),
  // and clamping would hide it from the caller's pagination logic.
  if (request.k > snapshot->num_locations()) {
    response.status = InvalidArgumentError(
        "k=" + std::to_string(request.k) + " exceeds the vocabulary (" +
        std::to_string(snapshot->num_locations()) + " locations)");
    return response;
  }

  // Resolve ζ: explicit history > append-and-read > stored session.
  std::vector<int32_t> history;
  if (!request.history.empty()) {
    history = request.history;
  } else if (request.new_checkin >= 0) {
    // Validate before appending so a bad id never poisons the session.
    const int32_t checkin[] = {request.new_checkin};
    if (Status s = snapshot->ValidateHistory(checkin); !s.ok()) {
      response.status = std::move(s);
      return response;
    }
    history = sessions_.Append(request.user_id, request.new_checkin);
  } else {
    auto stored = sessions_.Get(request.user_id);
    if (!stored.has_value()) {
      response.status = NotFoundError(
          "no session for user " + std::to_string(request.user_id));
      return response;
    }
    history = std::move(*stored);
  }
  // Sessions can legitimately hold ids a newly swapped (smaller) model
  // doesn't know; that fails the one request, not the process.
  if (Status s = snapshot->ValidateHistory(history); !s.ok()) {
    response.status = std::move(s);
    return response;
  }
  for (int32_t l : request.exclude) {
    if (l < 0 || l >= snapshot->num_locations()) {
      response.status = InvalidArgumentError(
          "exclude id " + std::to_string(l) + " outside the vocabulary");
      return response;
    }
  }

  const std::vector<float> profile = snapshot->Profile(history);
  // Approximate (IVF-pruned) scan only when the snapshot was built with
  // an index; the exact scan stays the default and the reference.
  if (snapshot->ivf() != nullptr) {
    response.topk = ApproxTopKScores(*snapshot, profile, request.k,
                                     config_.nprobe, request.exclude);
  } else {
    response.topk =
        TopKScores(*snapshot, profile, request.k, request.exclude);
  }
  switch (snapshot->format()) {
    case SnapshotFormat::kFloat32:
      metrics_.requests_f32.fetch_add(1, std::memory_order_relaxed);
      break;
    case SnapshotFormat::kFloat16:
      metrics_.requests_fp16.fetch_add(1, std::memory_order_relaxed);
      break;
    case SnapshotFormat::kInt8:
      metrics_.requests_int8.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  response.status = Status::Ok();
  return response;
}

Response ServingEngine::Finish(Response response,
                               Clock::time_point start) {
  response.latency_micros =
      std::max<int64_t>(0, MicrosBetween(start, Clock::now()));
  metrics_.latency.Record(static_cast<uint64_t>(response.latency_micros));
  switch (response.status.code()) {
    case StatusCode::kOk:
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kNotFound:
      metrics_.requests_not_found.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.requests_deadline_exceeded.fetch_add(
          1, std::memory_order_relaxed);
      break;
    case StatusCode::kFailedPrecondition:
      metrics_.requests_no_model.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      metrics_.requests_overloaded.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      metrics_.requests_invalid_argument.fetch_add(
          1, std::memory_order_relaxed);
      break;
  }
  return response;
}

Response ServingEngine::Recommend(const Request& request) {
  const Clock::time_point now = Clock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_.Current();
  return Finish(Execute(request, snapshot, now),
                ResolveArrival(request, now));
}

std::vector<Response> ServingEngine::RecommendBatch(
    std::vector<Request> requests) {
  const size_t n = requests.size();
  std::vector<Response> responses(n);
  if (n == 0) return responses;
  const size_t batch = static_cast<size_t>(config_.max_batch);
  const size_t num_batches = (n + batch - 1) / batch;
  std::latch done(static_cast<ptrdiff_t>(num_batches));

  for (size_t begin = 0; begin < n; begin += batch) {
    const size_t end = std::min(n, begin + batch);
    pool_.Schedule([this, &requests, &responses, &done, begin, end] {
      // One snapshot load and one clock read cover the whole micro-batch.
      const Clock::time_point now = Clock::now();
      const std::shared_ptr<const ModelSnapshot> snapshot =
          registry_.Current();
      for (size_t i = begin; i < end; ++i) {
        responses[i] = Finish(Execute(requests[i], snapshot, now),
                              ResolveArrival(requests[i], now));
      }
      metrics_.batches.fetch_add(1, std::memory_order_relaxed);
      metrics_.batched_requests.fetch_add(end - begin,
                                          std::memory_order_relaxed);
      done.count_down();
    });
  }
  done.wait();
  return responses;
}

std::vector<std::future<Response>> ServingEngine::SubmitAsyncBatch(
    std::vector<Request> requests) {
  const Clock::time_point submitted = Clock::now();
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  for (Request& request : requests) {
    if (request.arrival == Clock::time_point{}) request.arrival = submitted;
    auto promise = std::make_shared<std::promise<Response>>();
    futures.push_back(promise->get_future());
    if (config_.max_queue > 0) {
      const int64_t in_flight =
          async_in_flight_.fetch_add(1, std::memory_order_acq_rel);
      if (in_flight >= config_.max_queue) {
        async_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        Response shed;
        shed.status = ResourceExhaustedError(
            "overloaded: " + std::to_string(in_flight) +
            " requests already queued");
        promise->set_value(Finish(std::move(shed), request.arrival));
        continue;
      }
    }
    tasks.push_back([this, request = std::move(request),
                     promise = std::move(promise)]() mutable {
      const Clock::time_point now = Clock::now();
      const std::shared_ptr<const ModelSnapshot> snapshot =
          registry_.Current();
      promise->set_value(Finish(Execute(request, snapshot, now),
                                request.arrival));
      if (config_.max_queue > 0) {
        async_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  pool_.ScheduleAll(tasks);
  return futures;
}

std::future<Response> ServingEngine::SubmitAsync(Request request) {
  const Clock::time_point submitted = Clock::now();
  if (request.arrival == Clock::time_point{}) request.arrival = submitted;
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  // Admission control: shed instead of queueing without bound. The
  // rejection is immediate (never enters the pool) so an overloaded
  // engine answers OVERLOADED in microseconds rather than timing every
  // excess request out at its deadline.
  if (config_.max_queue > 0) {
    const int64_t in_flight =
        async_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (in_flight >= config_.max_queue) {
      async_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      Response shed;
      shed.status = ResourceExhaustedError(
          "overloaded: " + std::to_string(in_flight) +
          " requests already queued");
      promise->set_value(Finish(std::move(shed), request.arrival));
      return future;
    }
  }
  pool_.Schedule([this, request = std::move(request), promise]() mutable {
    const Clock::time_point now = Clock::now();
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_.Current();
    promise->set_value(Finish(Execute(request, snapshot, now),
                              request.arrival));
    if (config_.max_queue > 0) {
      async_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  });
  return future;
}

}  // namespace plp::serve
