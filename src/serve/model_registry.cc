#include "serve/model_registry.h"

#include "common/check.h"

namespace plp::serve {

ModelRegistry::ModelRegistry(std::shared_ptr<const ModelSnapshot> initial) {
  if (initial != nullptr) Publish(std::move(initial));
}

uint64_t ModelRegistry::Publish(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  PLP_CHECK(snapshot != nullptr);
  current_.store(std::move(snapshot), std::memory_order_release);
  return generation_.fetch_add(1, std::memory_order_relaxed) + 1;
}

Result<uint64_t> ModelRegistry::PublishVerified(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("cannot publish a null snapshot");
  }
  PLP_RETURN_IF_ERROR(snapshot->Verify());
  return Publish(std::move(snapshot));
}

}  // namespace plp::serve
