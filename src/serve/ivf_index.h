#ifndef PLP_SERVE_IVF_INDEX_H_
#define PLP_SERVE_IVF_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace plp::serve {

/// IVF-style candidate-pruning index over a snapshot's embedding matrix.
///
/// At build time the rows are clustered with spherical k-means (dot-product
/// assignment over unit-norm rows — equivalent to cosine k-means); at query
/// time the profile is scored against the C centroids and only the rows of
/// the best `nprobe` clusters are exact-scored. With C ≈ √L and nprobe a
/// fixed fraction of C, the scan shrinks from L rows to ~L·nprobe/C — the
/// classic inverted-file trade: recall@k is bounded below 1.0 only by
/// profiles whose true top-k rows hide in unprobed clusters, which the
/// recall gate in tests keeps ≥ 0.99 at default settings.
///
/// The build is deterministic (strided seeding, fixed iteration order, no
/// RNG), so the same matrix always produces the same index on every host.
class IvfIndex {
 public:
  struct Options {
    /// Number of clusters; 0 picks 2·ceil(sqrt(L)) clamped to [1, L].
    /// (2× the classic √L rule: measured recall@10 on clustered
    /// embeddings plateaus at a much smaller probed *fraction* with the
    /// finer partition, so the same recall costs half the scan.)
    int32_t num_clusters = 0;
    /// Lloyd iterations. Diminishing returns past ~8 on embedding data.
    int32_t iterations = 8;
    /// Centroid training runs on at most max(4096, sample_per_cluster · C)
    /// strided rows, followed by one full assignment pass — keeps build
    /// time sane at large L without changing the query-side contract.
    int32_t sample_per_cluster = 64;
  };

  /// Builds over a row-major L×dim float32 matrix (rows assumed unit-norm,
  /// zero rows allowed). L must be ≥ 1.
  static IvfIndex Build(const float* matrix, int32_t num_rows, int32_t dim,
                        const Options& options);

  int32_t num_clusters() const { return num_clusters_; }
  int32_t dim() const { return dim_; }

  /// Probe width giving the tested ≥ 0.99 recall@10 at default build
  /// settings: a fifth of the clusters, at least 1. Tuned on the
  /// clustered recall fixture (tests/serve/ivf_index_test.cc): profiles
  /// average several history rows, so their top-10 straddles one cluster
  /// per history group — C/8 measured 0.988, C/5 measures 0.9985 and
  /// still prunes ~80% of the scan.
  int32_t default_nprobe() const {
    return std::max(1, (num_clusters_ + 4) / 5);
  }

  /// Fills `out` (cleared first) with the ids of the `nprobe` clusters
  /// whose centroids score highest against `profile` (ties toward the
  /// smaller id), in ascending cluster id — the order that walks a
  /// cluster-packed payload monotonically. nprobe is clamped to
  /// [1, num_clusters].
  void TopClusters(std::span<const float> profile, int32_t nprobe,
                   std::vector<int32_t>& out) const;

  /// Global position of a cluster's first row in the concatenated
  /// posting-list order — the offset of that cluster's rows inside a
  /// payload packed by BuildPackedPayload (ModelSnapshot).
  int32_t ClusterOffset(int32_t cluster) const {
    return cluster_begin_[static_cast<size_t>(cluster)];
  }

  /// Row ids of one cluster, ascending.
  std::span<const int32_t> ClusterMembers(int32_t cluster) const {
    const auto begin = static_cast<size_t>(cluster_begin_[
        static_cast<size_t>(cluster)]);
    const auto end = static_cast<size_t>(cluster_begin_[
        static_cast<size_t>(cluster) + 1]);
    return {member_ids_.data() + begin, end - begin};
  }

  /// Fills `out` (cleared first) with the row ids of the `nprobe` clusters
  /// whose centroids score highest against `profile`, clusters in
  /// ascending id, row ids ascending within each cluster. nprobe is
  /// clamped to [1, num_clusters].
  void CandidateRows(std::span<const float> profile, int32_t nprobe,
                     std::vector<int32_t>& out) const;

  /// Resident bytes of centroids + posting lists.
  size_t memory_bytes() const {
    return centroids_.size() * sizeof(float) +
           member_ids_.size() * sizeof(int32_t) +
           cluster_begin_.size() * sizeof(int32_t);
  }

 private:
  IvfIndex() = default;

  int32_t dim_ = 0;
  int32_t num_clusters_ = 0;
  std::vector<float> centroids_;       ///< C × dim, row-major
  std::vector<int32_t> member_ids_;    ///< row ids grouped by cluster
  std::vector<int32_t> cluster_begin_; ///< C+1 offsets into member_ids_
};

}  // namespace plp::serve

#endif  // PLP_SERVE_IVF_INDEX_H_
