#ifndef PLP_SGNS_SPARSE_DELTA_H_
#define PLP_SGNS_SPARSE_DELTA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sgns/model.h"
#include "sgns/row_map.h"

namespace plp {
class ThreadPool;
}  // namespace plp

namespace plp::sgns {

/// A dense parameter-shaped buffer: the Gaussian sum query of Algorithm 1
/// accumulates clipped bucket deltas here, receives iid noise on *every*
/// coordinate (line 9 — noise is dense even though deltas are sparse), and
/// is then averaged and handed to the server optimizer.
class DenseUpdate {
 public:
  /// A zero update with the same shape as `model`.
  explicit DenseUpdate(const SgnsModel& model);

  int32_t num_locations() const { return num_locations_; }
  int32_t dim() const { return dim_; }

  std::span<double> TensorData(Tensor t);
  std::span<const double> TensorData(Tensor t) const;

  /// Adds iid N(0, stddev²) noise to every coordinate of every tensor.
  /// Each tensor draws from its own counter-based per-block stream derived
  /// from `noise_seed` (common/parallel_ops), so the output is a pure
  /// function of (noise_seed, stddev, shape): bitwise identical whether
  /// `pool` is null or has any number of threads. This is the noise half
  /// of the trainer's thread-count-determinism guarantee.
  void AddGaussianNoise(uint64_t noise_seed, double stddev,
                        ThreadPool* pool = nullptr);

  /// Sequential-stream variant drawing from `rng` in coordinate order
  /// (Gaussian-mechanism building block; kept for callers that own the
  /// stream).
  void AddGaussianNoise(Rng& rng, double stddev);

  /// Adds iid N(0, stddev²) noise to one tensor only (per-tensor noise
  /// calibration ablation), using the same per-tensor stream `noise_seed`
  /// induces in the all-tensor overload.
  void AddGaussianNoiseToTensor(Tensor t, uint64_t noise_seed, double stddev,
                                ThreadPool* pool = nullptr);

  /// Sequential-stream variant of per-tensor noise.
  void AddGaussianNoiseToTensor(Tensor t, Rng& rng, double stddev);

  /// Resets every coordinate to zero (buffer reuse across steps).
  void Zero(ThreadPool* pool = nullptr);

  /// Multiplies every coordinate by `factor` (e.g. 1/|H|).
  void Scale(double factor, ThreadPool* pool = nullptr);

  /// Overall l2 norm across all tensors. Always block-decomposed
  /// (common/parallel_ops), so serial and pooled calls agree bitwise.
  double Norm(ThreadPool* pool = nullptr) const;

  /// Adds this update into the model: θ ← θ + u (Algorithm 1 line 10).
  void ApplyTo(SgnsModel& model) const;

 private:
  int32_t num_locations_ = 0;
  int32_t dim_ = 0;
  std::vector<double> w_in_;
  std::vector<double> w_out_;
  std::vector<double> bias_;
};

/// The sparse difference phi − theta over rows where the two models differ.
/// Models must have identical shapes. O(L·dim) — used by the dense
/// local-copy mode (paper-faithful cost model for the runtime experiment).
class SparseDelta;
SparseDelta DiffModels(const SgnsModel& phi, const SgnsModel& theta);

/// sum += scale · Σ_i deltas[i] — the Σ of the Gaussian sum query, as a
/// sharded, deterministically-ordered parallel reduction. The dense
/// parameter space is split into (tensor, row-range) shards that write
/// disjoint regions of `sum`; within every shard the deltas are scanned in
/// index order, so each coordinate receives exactly the FP additions — in
/// exactly the order — of the serial
/// `for (d : deltas) d->AccumulateInto(sum, scale)` loop. The result is
/// therefore bitwise identical for any pool size, including none. Null
/// entries in `deltas` are skipped.
void AccumulateDeltas(std::span<const SparseDelta* const> deltas,
                      double scale, DenseUpdate& sum,
                      ThreadPool* pool = nullptr);

/// A sparse parameter delta: only the embedding/context rows and bias
/// entries actually touched by a bucket's local training are materialized.
/// This is what makes per-bucket clipping cheap — norms and scaling are
/// O(touched rows · dim), not O(L · dim).
class SparseDelta {
 public:
  /// Requires dim > 0.
  explicit SparseDelta(int32_t dim);

  int32_t dim() const { return dim_; }

  /// Mutable row accumulator (zero-initialized on first access). `tensor`
  /// must be kWIn or kWOut. The span is invalidated by the next Row call.
  /// Inline: this and AddBias are the per-candidate accesses of the
  /// backward loop, hot enough that the probe must inline into callers.
  std::span<double> Row(Tensor tensor, int32_t row) {
    PLP_CHECK(tensor == Tensor::kWIn || tensor == Tensor::kWOut);
    return (tensor == Tensor::kWIn ? in_rows_ : out_rows_)
        .FindOrInsertZero(row);
  }

  /// Adds `value` to the bias accumulator for `row`.
  void AddBias(int32_t row, double value) {
    bias_.FindOrInsertZero(row)[0] += value;
  }

  /// Calls fn(row, std::span<const double>) for each touched row of kWIn
  /// or kWOut; for kBias the span has length 1.
  template <typename Fn>
  void ForEachRow(Tensor tensor, Fn&& fn) const {
    StoreFor(tensor).ForEach(fn);
  }

  /// l2 norm of one tensor's touched entries (untouched entries are zero,
  /// so this is the exact tensor norm).
  double TensorNorm(Tensor t) const;

  /// Overall l2 norm across the three tensors.
  double TotalNorm() const;

  /// Multiplies one tensor by `factor`.
  void ScaleTensor(Tensor t, double factor);

  /// Multiplies everything by `factor`.
  void Scale(double factor);

  /// Per-layer clipping of Section 4.1: each tensor is independently scaled
  /// down (if needed) so its norm is at most `per_tensor_max` = C/√|θ|.
  /// Equivalent to line 21 applied per tensor. Returns true when any tensor
  /// actually hit the bound (the clip "engaged") — the trainer aggregates
  /// this into the clip_fraction diagnostic of §4.2.
  bool ClipPerTensor(double per_tensor_max);

  /// Clips the *overall* delta norm to `max_norm` (literal line 21).
  /// Returns true when the bound engaged.
  bool ClipTotal(double max_norm);

  /// sum += scale · delta (the Σ of the Gaussian sum query).
  void AccumulateInto(DenseUpdate& sum, double scale) const;

  /// sum += scale · (the touched rows of `tensor` with row in
  /// [row_begin, row_end)). Row-range shard of AccumulateInto, used by the
  /// parallel reduction; accumulation per coordinate is the identical
  /// `out[d] += scale * vec[d]`.
  void AccumulateTensorRangeInto(DenseUpdate& sum, double scale,
                                 Tensor tensor, int32_t row_begin,
                                 int32_t row_end) const;

  /// model += scale · delta (used by the non-private trainer).
  void ApplyTo(SgnsModel& model, double scale) const;

  /// Number of materialized rows across W and W' plus bias entries.
  size_t NumTouchedEntries() const;

  bool empty() const { return NumTouchedEntries() == 0; }

  /// Removes all entries but keeps capacity (reuse across batches).
  void Clear();

  /// Pre-sizes the three row stores for a burst of inserts of known
  /// cardinality (e.g. delta extraction from an overlay whose touched-row
  /// counts are known exactly).
  void Reserve(size_t in_rows, size_t out_rows, size_t bias_rows) {
    in_rows_.Reserve(in_rows);
    out_rows_.Reserve(out_rows);
    bias_.Reserve(bias_rows);
  }

 private:
  RowMap& StoreFor(Tensor t);
  const RowMap& StoreFor(Tensor t) const;

  int32_t dim_ = 0;
  RowMap in_rows_;
  RowMap out_rows_;
  RowMap bias_;  // dim 1
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_SPARSE_DELTA_H_
