#ifndef PLP_SGNS_MODEL_H_
#define PLP_SGNS_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "common/status.h"

namespace plp::sgns {

/// The three trainable tensors of Figure 2: θ = {W, W', B'}.
enum class Tensor { kWIn = 0, kWOut = 1, kBias = 2 };
inline constexpr int kNumTensors = 3;

/// Loss used for the sampled output layer (Section 3.2).
enum class LossKind {
  /// Softmax over {true context} ∪ {neg uniform candidates}; the paper's
  /// choice ("a sampled softmax function with a uniform sampling
  /// distribution").
  kSampledSoftmax,
  /// Classic skip-gram negative-sampling logistic loss (Mikolov et al.),
  /// kept for the ablation bench.
  kSgnsLogistic,
};

/// How negative candidates are drawn for each positive pair.
enum class NegativeSamplingKind {
  /// Uniform over [0, L). The paper's (and the DP path's) choice: the
  /// distribution is data-independent, so it adds nothing to the privacy
  /// analysis. Default.
  kUniform,
  /// Frequency-proportional, P(c) ∝ count(c)^unigram_power (the word2vec
  /// unigram^0.75 law via sgns::UnigramTable). The token frequencies are
  /// data-derived and NOT covered by the DP accounting — a non-private /
  /// research option for large-vocabulary utility studies.
  kUnigram,
};

/// Skip-gram hyper-parameters (paper defaults from Section 5.1).
struct SgnsConfig {
  int32_t embedding_dim = 50;  ///< dim
  int32_t window = 2;          ///< win: symmetric context window
  int32_t negatives = 16;      ///< neg: candidates drawn per positive pair
  LossKind loss = LossKind::kSampledSoftmax;
  double init_scale = 0.0;  ///< 0 → use 0.5/dim (word2vec convention)
  NegativeSamplingKind negative_sampling = NegativeSamplingKind::kUniform;
  double unigram_power = 0.75;  ///< smoothing exponent for kUnigram
};

/// The skip-gram location model: an embedding matrix W (L × dim), a context
/// matrix W' (L × dim) and a bias vector B' (L). All parameter access is by
/// row so gradient updates stay sparse.
///
/// Storage layout: W and W' live in 64-byte-aligned arenas with rows padded
/// to row_stride() = PaddedRowStride(dim) doubles, so every row starts on a
/// cache-line boundary and the vectorized Dot/Axpy kernels run over aligned
/// spans. The padding tail of every row is maintained at exactly 0.0 by
/// every mutation path (row spans only expose the logical dim entries), so
/// two models with equal logical parameters also compare equal over their
/// full TensorData spans. B' is unpadded (aligned, length L).
class SgnsModel {
 public:
  /// An empty (0-location) model; usable only as a move-assignment target.
  SgnsModel() = default;

  /// Creates a model with W initialized uniformly in ±init_scale and
  /// W', B' at zero (word2vec convention). Fails on non-positive sizes.
  /// The RNG is drawn row-wise over the logical dims, so the draw sequence
  /// is independent of the storage padding.
  static Result<SgnsModel> Create(int32_t num_locations,
                                  const SgnsConfig& config, Rng& rng);

  int32_t num_locations() const { return num_locations_; }
  int32_t dim() const { return dim_; }

  /// Stored doubles per W/W' row: dim rounded up to a 64-byte multiple.
  size_t row_stride() const { return stride_; }

  /// Total scalar parameter count: 2·L·dim + L (padding excluded).
  int64_t num_parameters() const;

  /// Logical element count of one tensor: L·dim for W/W', L for B'.
  /// This — not TensorData(t).size(), which includes padding — is the
  /// shape serialization and optimizer state are keyed on.
  size_t TensorNumel(Tensor t) const;

  std::span<const double> InRow(int32_t location) const;
  std::span<double> MutableInRow(int32_t location);
  std::span<const double> OutRow(int32_t location) const;
  std::span<double> MutableOutRow(int32_t location);
  double bias(int32_t location) const;
  double& mutable_bias(int32_t location);

  /// Whole-tensor *storage* views: for W/W' these are the padded arenas
  /// (L·row_stride() doubles, padding always 0.0); for B' the logical
  /// vector. Fine for element-wise comparison or noise-free scans; use the
  /// row accessors or TensorNumel for anything shape-sensitive.
  std::span<const double> TensorData(Tensor t) const;
  std::span<double> MutableTensorData(Tensor t);

  /// l2 norm of one tensor (padding contributes zero to the sum).
  double TensorNorm(Tensor t) const;

  /// Returns a copy of W with every row scaled to unit l2 norm (Section 3.2:
  /// "the embedded vectors are normalized to unit length"). Row-major,
  /// L × dim — unpadded, so serialized embeddings are layout-independent.
  std::vector<double> NormalizedEmbeddings() const;

 private:
  int32_t num_locations_ = 0;
  int32_t dim_ = 0;
  size_t stride_ = 0;
  AlignedVector<double> w_in_;
  AlignedVector<double> w_out_;
  AlignedVector<double> bias_;
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_MODEL_H_
