#ifndef PLP_SGNS_LOSS_H_
#define PLP_SGNS_LOSS_H_

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "sgns/model.h"
#include "sgns/negative_sampler.h"
#include "sgns/pairs.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp::sgns {

/// Loss and example counts for a processed batch.
struct BatchStats {
  double loss_sum = 0.0;
  int64_t num_pairs = 0;

  double mean_loss() const {
    return num_pairs == 0 ? 0.0 : loss_sum / static_cast<double>(num_pairs);
  }
};

/// Transcendental-math policy for the sampled loss. The production default
/// evaluates exp/sigmoid through the bounded lookup tables in
/// common/math_util (one load + an interpolation instead of a libm call per
/// candidate). Both policies are pure functions — results never depend on
/// thread count or evaluation order — so either satisfies the determinism
/// contract; they just pin *different* bit-exact trajectories.
struct FastLossMath {
  /// Hoisted table references: fetched once per batch, not per candidate.
  const ExpNegLut& exp_neg = ExpNegLut::Get();
  const SigmoidLut& sigmoid = SigmoidLut::Get();

  double ExpNeg(double x) const { return exp_neg(x); }
  double Sigmoid(double x) const { return sigmoid(x); }
};

/// libm policy for tests that need the loss to be a smooth function of the
/// parameters — the finite-difference gradient check would otherwise see
/// the O(table-step) gap between a piecewise-linear interpolant's slope
/// and its value. Mirrors the LUTs' saturation so the two policies differ
/// only by the interpolation error bounded in tests/common.
struct ExactLossMath {
  double ExpNeg(double x) const { return x >= 0.0 ? 1.0 : std::exp(x); }
  double Sigmoid(double x) const {
    // Clamp so exp() never overflows; gradients saturate anyway.
    return 1.0 / (1.0 + std::exp(-Clamp(x, -30.0, 30.0)));
  }
};

/// Computes the batch-average gradient of the sampled loss at the model's
/// current parameters (accumulated into `gradient`), returning the batch
/// loss. Only the rows of the target embedding and the neg+1 candidate
/// output rows/biases are touched per pair — the sparsity Section 3.2
/// relies on. Negative candidates are drawn *uniformly* over
/// [0, num_locations) (frequency-based sampling would leak; Section 3.2),
/// excluding the true context.
///
/// `Model` must expose InRow/OutRow/bias like SgnsModel or LocalModel.
/// `buffers` is an optional allocation cache (candidate/logit scratch,
/// fully overwritten here); passing it changes nothing but allocation.
/// `negative_table` switches candidate draws to the unigram^power law
/// (SgnsConfig::negative_sampling == kUnigram); null keeps the uniform
/// draw byte-identical to before the option existed.
template <typename Model, typename LossMath = FastLossMath>
BatchStats AccumulateBatchGradient(const Model& model,
                                   std::span<const Pair> batch,
                                   const SgnsConfig& config,
                                   int32_t num_locations, Rng& rng,
                                   SparseDelta& gradient,
                                   PairBuffers* buffers = nullptr,
                                   const UnigramTable* negative_table =
                                       nullptr);

/// Applies one SGD step over a batch (Algorithm 1 line 19):
///   Φ ← Φ − η · (1/|b|) Σ ∇J(Φ).
/// Returns the batch loss. `scratch` is an optional workspace: when given,
/// its gradient is Clear()ed and reused instead of constructing a fresh
/// SparseDelta per batch, and its candidate/logit buffers back the
/// accumulation — identical results, no steady-state allocation.
template <typename Model, typename LossMath = FastLossMath>
BatchStats ApplySgdBatch(Model& model, std::span<const Pair> batch,
                         const SgnsConfig& config, int32_t num_locations,
                         double learning_rate, Rng& rng,
                         TrainScratch* scratch = nullptr,
                         const UnigramTable* negative_table = nullptr);

// Implementation details only below here.

namespace internal_loss {

/// Draws a uniform candidate different from `exclude` (bounded retries;
/// with L >= 2 a collision streak of 16 is practically impossible).
inline int32_t DrawNegative(Rng& rng, int32_t num_locations, int32_t exclude) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int32_t c = static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(num_locations)));
    if (c != exclude) return c;
  }
  return exclude == 0 ? (num_locations > 1 ? 1 : 0) : 0;
}

/// Table-driven variant: same bounded-retry/fallback contract as the
/// uniform draw, with candidates from the unigram^power law. A null table
/// falls through to the uniform draw (no extra RNG consumption either
/// way, so the uniform path stays bitwise identical).
inline int32_t DrawNegative(Rng& rng, int32_t num_locations, int32_t exclude,
                            const UnigramTable* table) {
  if (table == nullptr) return DrawNegative(rng, num_locations, exclude);
  PLP_CHECK_EQ(table->num_locations(), num_locations);
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int32_t c = table->Sample(rng);
    if (c != exclude) return c;
  }
  return exclude == 0 ? (num_locations > 1 ? 1 : 0) : 0;
}

}  // namespace internal_loss

template <typename Model, typename LossMath>
BatchStats AccumulateBatchGradient(const Model& model,
                                   std::span<const Pair> batch,
                                   const SgnsConfig& config,
                                   int32_t num_locations, Rng& rng,
                                   SparseDelta& gradient,
                                   PairBuffers* buffers,
                                   const UnigramTable* negative_table) {
  PLP_CHECK_GT(num_locations, 0);
  PLP_CHECK_GT(config.negatives, 0);
  const int32_t dim = config.embedding_dim;
  PLP_CHECK_EQ(dim, gradient.dim());

  const LossMath math;
  BatchStats stats;
  const int32_t num_candidates = config.negatives + 1;
  PairBuffers local_buffers;
  PairBuffers& buf = buffers != nullptr ? *buffers : local_buffers;
  buf.candidates.resize(static_cast<size_t>(num_candidates));
  buf.logits.resize(static_cast<size_t>(num_candidates));
  buf.dlogits.resize(static_cast<size_t>(num_candidates));
  buf.grad_h.resize(static_cast<size_t>(dim));
  std::vector<int32_t>& candidates = buf.candidates;
  AlignedVector<double>& logits = buf.logits;
  AlignedVector<double>& dlogits = buf.dlogits;
  AlignedVector<double>& grad_h = buf.grad_h;

  for (const Pair& pair : batch) {
    PLP_CHECK(pair.target >= 0 && pair.target < num_locations);
    PLP_CHECK(pair.context >= 0 && pair.context < num_locations);
    const std::span<const double> h = model.InRow(pair.target);

    candidates[0] = pair.context;  // positive class first
    for (int32_t i = 1; i < num_candidates; ++i) {
      candidates[i] = internal_loss::DrawNegative(rng, num_locations,
                                                  pair.context,
                                                  negative_table);
    }
    // The candidate rows are uniform-random draws over W', which at
    // realistic L does not fit in L2 — without a hint the forward dots
    // stall on one row-sized miss each. Prefetching the whole candidate
    // set first lets those loads overlap.
    for (int32_t i = 0; i < num_candidates; ++i) {
      __builtin_prefetch(model.OutRow(candidates[i]).data());
    }
    for (int32_t i = 0; i < num_candidates; ++i) {
      logits[i] = DotKernel(model.OutRow(candidates[i]).data(), h.data(),
                            static_cast<size_t>(dim)) +
                  model.bias(candidates[i]);
    }

    if (config.loss == LossKind::kSampledSoftmax) {
      // Softmax over the candidate set; loss = −log p(positive). One fused
      // max-shifted pass: e_i = exp(u_i − max) lands in dlogits, then one
      // log for the loss and one divide for the probabilities — instead of
      // a LogSumExp pass plus a second exp per candidate.
      double max_logit = logits[0];
      for (int32_t i = 1; i < num_candidates; ++i) {
        max_logit = std::max(max_logit, logits[i]);
      }
      double sum = 0.0;
      for (int32_t i = 0; i < num_candidates; ++i) {
        const double e = math.ExpNeg(logits[i] - max_logit);
        dlogits[i] = e;
        sum += e;
      }
      stats.loss_sum += max_logit + std::log(sum) - logits[0];
      const double inv_sum = 1.0 / sum;
      for (int32_t i = 0; i < num_candidates; ++i) {
        dlogits[i] = dlogits[i] * inv_sum - (i == 0 ? 1.0 : 0.0);
      }
    } else {
      // Classic SGNS: −log σ(u₀) − Σ log σ(−uᵢ).
      for (int32_t i = 0; i < num_candidates; ++i) {
        const double s = math.Sigmoid(logits[i]);
        if (i == 0) {
          stats.loss_sum += -std::log(std::max(s, 1e-12));
          dlogits[i] = s - 1.0;
        } else {
          stats.loss_sum += -std::log(std::max(1.0 - s, 1e-12));
          dlogits[i] = s;
        }
      }
    }

    // Back-propagate: dL/dW'[c] = g_c · h, dL/db[c] = g_c,
    // dL/dh = Σ g_c · W'[c]. Axpy is element-independent, so splitting the
    // old fused loop into two kernel calls keeps results bitwise identical.
    std::fill(grad_h.begin(), grad_h.end(), 0.0);
    for (int32_t i = 0; i < num_candidates; ++i) {
      const double g = dlogits[i];
      const std::span<const double> out_row = model.OutRow(candidates[i]);
      const std::span<double> grad_out =
          gradient.Row(Tensor::kWOut, candidates[i]);
      AxpyKernel(g, h.data(), grad_out.data(), static_cast<size_t>(dim));
      AxpyKernel(g, out_row.data(), grad_h.data(), static_cast<size_t>(dim));
      gradient.AddBias(candidates[i], g);
    }
    const std::span<double> grad_in = gradient.Row(Tensor::kWIn, pair.target);
    AxpyKernel(1.0, grad_h.data(), grad_in.data(), static_cast<size_t>(dim));

    ++stats.num_pairs;
  }
  return stats;
}

template <typename Model, typename LossMath>
BatchStats ApplySgdBatch(Model& model, std::span<const Pair> batch,
                         const SgnsConfig& config, int32_t num_locations,
                         double learning_rate, Rng& rng,
                         TrainScratch* scratch,
                         const UnigramTable* negative_table) {
  if (batch.empty()) return BatchStats{};
  std::optional<SparseDelta> owned_gradient;
  SparseDelta* gradient;
  if (scratch != nullptr) {
    PLP_CHECK_EQ(scratch->gradient.dim(), config.embedding_dim);
    scratch->gradient.Clear();
    gradient = &scratch->gradient;
  } else {
    owned_gradient.emplace(config.embedding_dim);
    gradient = &*owned_gradient;
  }
  const BatchStats stats = AccumulateBatchGradient<Model, LossMath>(
      model, batch, config, num_locations, rng, *gradient,
      scratch != nullptr ? &scratch->buffers : nullptr, negative_table);
  const double scale =
      -learning_rate / static_cast<double>(batch.size());
  const size_t dim = static_cast<size_t>(config.embedding_dim);
  // Apply: overlay rows for LocalModel, direct rows for SgnsModel.
  gradient->ForEachRow(Tensor::kWIn,
                       [&](int32_t row, std::span<const double> vec) {
                         AxpyKernel(scale, vec.data(),
                                    model.MutableInRow(row).data(), dim);
                       });
  gradient->ForEachRow(Tensor::kWOut,
                       [&](int32_t row, std::span<const double> vec) {
                         AxpyKernel(scale, vec.data(),
                                    model.MutableOutRow(row).data(), dim);
                       });
  gradient->ForEachRow(Tensor::kBias,
                       [&](int32_t row, std::span<const double> v) {
                         model.mutable_bias(row) += scale * v[0];
                       });
  return stats;
}

}  // namespace plp::sgns

#endif  // PLP_SGNS_LOSS_H_
