#include "sgns/model_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/serialize.h"

namespace plp::sgns {
namespace {

constexpr char kMagicFull[4] = {'P', 'L', 'P', 'M'};
constexpr char kMagicEmbeddings[4] = {'P', 'L', 'P', 'E'};
constexpr int32_t kFormatVersion = 1;

void WriteHeader(ByteWriter& out, const char magic[4], int32_t num_locations,
                 int32_t dim) {
  for (int i = 0; i < 4; ++i) out.U8(static_cast<uint8_t>(magic[i]));
  out.I32(kFormatVersion);
  out.I32(num_locations);
  out.I32(dim);
}

constexpr int64_t kHeaderBytes = 4 + 3 * static_cast<int64_t>(sizeof(int32_t));

/// Size of the already-open stream in bytes; leaves the read position at 0.
Result<int64_t> StreamSize(std::ifstream& in) {
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(0, std::ios::beg);
  if (!in || end < 0) return InternalError("cannot stat model file");
  return static_cast<int64_t>(end);
}

/// Validates that the payload after the header holds exactly
/// `expected_doubles` little-endian doubles. Works on byte counts divided
/// down (never multiplied up), so a hostile header can't overflow the
/// check and trigger a huge allocation: L and dim are bounded by the real
/// file length before any resize happens.
Status ValidatePayload(int64_t file_bytes, int64_t expected_doubles) {
  const int64_t payload_bytes = file_bytes - kHeaderBytes;
  if (payload_bytes < 0) return InvalidArgumentError("truncated model file");
  if (payload_bytes % static_cast<int64_t>(sizeof(double)) != 0) {
    return InvalidArgumentError("model payload is not a whole tensor");
  }
  const int64_t payload_doubles =
      payload_bytes / static_cast<int64_t>(sizeof(double));
  if (payload_doubles < expected_doubles) {
    return InvalidArgumentError("truncated model file");
  }
  if (payload_doubles > expected_doubles) {
    return InvalidArgumentError("trailing bytes in model file");
  }
  return Status::Ok();
}

Status ReadHeader(std::ifstream& in, const char magic[4],
                  int32_t* num_locations, int32_t* dim) {
  char file_magic[4];
  in.read(file_magic, 4);
  if (!in || std::memcmp(file_magic, magic, 4) != 0) {
    return InvalidArgumentError("not a PLP model file (bad magic)");
  }
  auto read_i32 = [&in](int32_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
  };
  int32_t version = 0;
  read_i32(&version);
  if (!in || version != kFormatVersion) {
    return InvalidArgumentError("unsupported model format version");
  }
  read_i32(num_locations);
  read_i32(dim);
  if (!in || *num_locations <= 0 || *dim <= 0) {
    return InvalidArgumentError("corrupt model header");
  }
  return Status::Ok();
}

Status ReadDoubles(std::ifstream& in, std::span<double> values) {
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) return InvalidArgumentError("truncated model file");
  return Status::Ok();
}

}  // namespace

Status SaveModel(const SgnsModel& model, const std::string& path) {
  // Assemble in memory, then commit atomically: a crash mid-save (or a
  // concurrent reader) only ever sees the previous complete artifact.
  ByteWriter out;
  WriteHeader(out, kMagicFull, model.num_locations(), model.dim());
  // Row-wise over the logical dims: the payload is exactly 2·L·dim + L
  // doubles, independent of the in-memory row padding.
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    out.DoubleSpan(model.InRow(l));
  }
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    out.DoubleSpan(model.OutRow(l));
  }
  out.DoubleSpan(model.TensorData(Tensor::kBias));
  return AtomicWriteFile(path, out.str());
}

Result<SgnsModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  PLP_ASSIGN_OR_RETURN(const int64_t file_bytes, StreamSize(in));
  int32_t num_locations = 0, dim = 0;
  PLP_RETURN_IF_ERROR(ReadHeader(in, kMagicFull, &num_locations, &dim));
  // {W, W', B'}: 2·L·dim + L doubles. L and dim are each < 2^31, so the
  // int64 arithmetic below cannot overflow; the payload must match the
  // file length exactly before anything is allocated.
  const int64_t ld =
      static_cast<int64_t>(num_locations) * static_cast<int64_t>(dim);
  PLP_RETURN_IF_ERROR(ValidatePayload(file_bytes, 2 * ld + num_locations));

  Rng unused_rng(0);
  SgnsConfig config;
  config.embedding_dim = dim;
  PLP_ASSIGN_OR_RETURN(SgnsModel model,
                       SgnsModel::Create(num_locations, config, unused_rng));
  for (int32_t l = 0; l < num_locations; ++l) {
    PLP_RETURN_IF_ERROR(ReadDoubles(in, model.MutableInRow(l)));
  }
  for (int32_t l = 0; l < num_locations; ++l) {
    PLP_RETURN_IF_ERROR(ReadDoubles(in, model.MutableOutRow(l)));
  }
  PLP_RETURN_IF_ERROR(ReadDoubles(in, model.MutableTensorData(Tensor::kBias)));
  return model;
}

Status SaveEmbeddings(const SgnsModel& model, const std::string& path) {
  ByteWriter out;
  WriteHeader(out, kMagicEmbeddings, model.num_locations(), model.dim());
  out.DoubleSpan(model.NormalizedEmbeddings());
  return AtomicWriteFile(path, out.str());
}

Result<DeployedEmbeddings> LoadEmbeddings(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  PLP_ASSIGN_OR_RETURN(const int64_t file_bytes, StreamSize(in));
  DeployedEmbeddings deployed;
  PLP_RETURN_IF_ERROR(ReadHeader(in, kMagicEmbeddings,
                                 &deployed.num_locations, &deployed.dim));
  const int64_t ld = static_cast<int64_t>(deployed.num_locations) *
                     static_cast<int64_t>(deployed.dim);
  PLP_RETURN_IF_ERROR(ValidatePayload(file_bytes, ld));
  deployed.embeddings.resize(static_cast<size_t>(ld));
  PLP_RETURN_IF_ERROR(ReadDoubles(in, deployed.embeddings));
  return deployed;
}

}  // namespace plp::sgns
