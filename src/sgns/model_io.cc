#include "sgns/model_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace plp::sgns {
namespace {

constexpr char kMagicFull[4] = {'P', 'L', 'P', 'M'};
constexpr char kMagicEmbeddings[4] = {'P', 'L', 'P', 'E'};
constexpr int32_t kFormatVersion = 1;

Status WriteHeader(std::ofstream& out, const char magic[4],
                   int32_t num_locations, int32_t dim) {
  out.write(magic, 4);
  auto write_i32 = [&out](int32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_i32(kFormatVersion);
  write_i32(num_locations);
  write_i32(dim);
  if (!out) return InternalError("header write failed");
  return Status::Ok();
}

Status ReadHeader(std::ifstream& in, const char magic[4],
                  int32_t* num_locations, int32_t* dim) {
  char file_magic[4];
  in.read(file_magic, 4);
  if (!in || std::memcmp(file_magic, magic, 4) != 0) {
    return InvalidArgumentError("not a PLP model file (bad magic)");
  }
  auto read_i32 = [&in](int32_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
  };
  int32_t version = 0;
  read_i32(&version);
  if (!in || version != kFormatVersion) {
    return InvalidArgumentError("unsupported model format version");
  }
  read_i32(num_locations);
  read_i32(dim);
  if (!in || *num_locations <= 0 || *dim <= 0) {
    return InvalidArgumentError("corrupt model header");
  }
  return Status::Ok();
}

Status WriteDoubles(std::ofstream& out, std::span<const double> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!out) return InternalError("tensor write failed");
  return Status::Ok();
}

Status ReadDoubles(std::ifstream& in, std::span<double> values) {
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) return InvalidArgumentError("truncated model file");
  return Status::Ok();
}

}  // namespace

Status SaveModel(const SgnsModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open for writing: " + path);
  PLP_RETURN_IF_ERROR(
      WriteHeader(out, kMagicFull, model.num_locations(), model.dim()));
  for (int ti = 0; ti < kNumTensors; ++ti) {
    PLP_RETURN_IF_ERROR(
        WriteDoubles(out, model.TensorData(static_cast<Tensor>(ti))));
  }
  return Status::Ok();
}

Result<SgnsModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  int32_t num_locations = 0, dim = 0;
  PLP_RETURN_IF_ERROR(ReadHeader(in, kMagicFull, &num_locations, &dim));

  Rng unused_rng(0);
  SgnsConfig config;
  config.embedding_dim = dim;
  PLP_ASSIGN_OR_RETURN(SgnsModel model,
                       SgnsModel::Create(num_locations, config, unused_rng));
  for (int ti = 0; ti < kNumTensors; ++ti) {
    PLP_RETURN_IF_ERROR(
        ReadDoubles(in, model.MutableTensorData(static_cast<Tensor>(ti))));
  }
  // Reject trailing garbage.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return InvalidArgumentError("trailing bytes in model file");
  return model;
}

Status SaveEmbeddings(const SgnsModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open for writing: " + path);
  PLP_RETURN_IF_ERROR(WriteHeader(out, kMagicEmbeddings,
                                  model.num_locations(), model.dim()));
  const std::vector<double> normalized = model.NormalizedEmbeddings();
  return WriteDoubles(out, normalized);
}

Result<DeployedEmbeddings> LoadEmbeddings(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  DeployedEmbeddings deployed;
  PLP_RETURN_IF_ERROR(ReadHeader(in, kMagicEmbeddings,
                                 &deployed.num_locations, &deployed.dim));
  deployed.embeddings.resize(static_cast<size_t>(deployed.num_locations) *
                             static_cast<size_t>(deployed.dim));
  PLP_RETURN_IF_ERROR(ReadDoubles(in, deployed.embeddings));
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) return InvalidArgumentError("trailing bytes in model file");
  return deployed;
}

}  // namespace plp::sgns
