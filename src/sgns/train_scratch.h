#ifndef PLP_SGNS_TRAIN_SCRATCH_H_
#define PLP_SGNS_TRAIN_SCRATCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/aligned.h"
#include "sgns/local_model.h"
#include "sgns/pairs.h"
#include "sgns/sparse_delta.h"

namespace plp::sgns {

/// Per-pair candidate/logit buffers used inside AccumulateBatchGradient.
/// Resized (capacity kept) instead of reallocated every call. The double
/// buffers are 64-byte aligned so the Dot/Axpy kernels run over aligned
/// spans end to end.
struct PairBuffers {
  std::vector<int32_t> candidates;
  AlignedVector<double> logits;
  AlignedVector<double> dlogits;
  AlignedVector<double> grad_h;
};

/// Reusable workspace for local bucket training. The trainer owns one per
/// pool worker (indexed by ThreadPool::CurrentWorkerIndex()), so the steady
/// state of a training run does no per-batch or per-bucket allocation: the
/// pair list, the flattened-sentence buffer, the candidate/logit buffers
/// and the batch gradient all reuse the capacity they grew on earlier
/// buckets. Purely an allocation cache — every user fully overwrites or
/// Clear()s what it reads, so scratch reuse never changes results.
struct TrainScratch {
  explicit TrainScratch(int32_t dim) : gradient(dim) {}

  std::vector<Pair> pairs;        ///< one bucket's training pairs
  std::vector<int32_t> flat;      ///< concatenated sentences (paper-literal)
  PairBuffers buffers;            ///< candidate/logit scratch
  SparseDelta gradient;           ///< batch gradient, Clear()ed per batch
  /// Copy-on-write overlay reused across buckets (Reset() per bucket —
  /// bitwise result-neutral, see LocalModel::Reset). Engaged lazily the
  /// first time a bucket trains through this scratch.
  std::optional<LocalModel> overlay;
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_TRAIN_SCRATCH_H_
