#ifndef PLP_SGNS_PAIRS_H_
#define PLP_SGNS_PAIRS_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/rng.h"

namespace plp::sgns {

/// A (target, context) training example.
struct Pair {
  int32_t target = 0;
  int32_t context = 0;
};

inline bool operator==(const Pair& a, const Pair& b) {
  return a.target == b.target && a.context == b.context;
}

/// Exact number of pairs GeneratePairs emits for a sentence of `tokens`
/// tokens: every token pairs with its ≤ window neighbors on each side.
/// Used to pre-reserve pair buffers before generation.
size_t PairCount(size_t tokens, int32_t window);

/// Emits every (target, context) pair from one sentence with a symmetric
/// window of `window` tokens on each side (Section 3.2: "a symmetric window
/// of win context locations to the left and win to the right").
std::vector<Pair> GeneratePairs(std::span<const int32_t> sentence,
                                int32_t window);
inline std::vector<Pair> GeneratePairs(std::initializer_list<int32_t> sentence,
                                       int32_t window) {
  return GeneratePairs(std::span<const int32_t>(sentence.begin(),
                                                sentence.size()),
                       window);
}

/// Appends GeneratePairs' output to `out` without clearing it. Callers
/// that concatenate many sentences (BucketPairs) reserve once from
/// PairCount and append, avoiding repeated reallocation.
void AppendPairs(std::span<const int32_t> sentence, int32_t window,
                 std::vector<Pair>& out);

/// Splits `pairs` into shuffled batches of `batch_size` (the paper's
/// generateBatches(); the final batch may be short). Requires
/// batch_size > 0.
std::vector<std::vector<Pair>> MakeBatches(std::vector<Pair> pairs,
                                           int32_t batch_size, Rng& rng);

}  // namespace plp::sgns

#endif  // PLP_SGNS_PAIRS_H_
