#ifndef PLP_SGNS_ROW_MAP_H_
#define PLP_SGNS_ROW_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace plp::sgns {

/// Open-addressing hash map from int32 row id to a fixed-width row of
/// doubles, stored contiguously in insertion order.
///
/// This is the hot data structure of local training: every candidate row
/// access in the sampled-softmax inner loop goes through one of these. It
/// beats std::unordered_map by avoiding per-node allocation and pointer
/// chasing — rows live in one arena, and the table is a flat probe array.
/// Erasure is intentionally unsupported (training only ever inserts).
class RowMap {
 public:
  /// `dim` >= 1 doubles per row (use dim = 1 for scalar maps like B').
  explicit RowMap(int32_t dim) : dim_(static_cast<size_t>(dim)) {
    PLP_CHECK_GE(dim, 1);
    Rehash(16);
  }

  size_t size() const { return entry_keys_.size(); }
  bool empty() const { return entry_keys_.empty(); }
  int32_t dim() const { return static_cast<int32_t>(dim_); }

  /// Returns the row for `key`, inserting a zero-filled row if absent.
  /// `inserted` (optional) reports whether the row is new. Spans are
  /// invalidated by the next insertion.
  std::span<double> FindOrInsertZero(int32_t key, bool* inserted = nullptr) {
    size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) {
      if ((entry_keys_.size() + 1) * 4 > slots_.size() * 3) {
        Rehash(slots_.size() * 2);
        slot = Probe(key);
      }
      slots_[slot].key = key;
      slots_[slot].index = static_cast<uint32_t>(entry_keys_.size());
      entry_keys_.push_back(key);
      arena_.resize(arena_.size() + dim_, 0.0);
      if (inserted != nullptr) *inserted = true;
      return RowAt(entry_keys_.size() - 1);
    }
    if (inserted != nullptr) *inserted = false;
    return RowAt(slots_[slot].index);
  }

  /// Returns the row for `key`, or an empty span if absent.
  std::span<const double> Find(int32_t key) const {
    const size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) return {};
    return RowAt(slots_[slot].index);
  }

  std::span<double> FindMutable(int32_t key) {
    const size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) return {};
    return RowAt(slots_[slot].index);
  }

  /// Calls fn(key, std::span<const double>) for every row in insertion
  /// order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      fn(entry_keys_[i], RowAt(i));
    }
  }

  /// Calls fn(key, std::span<double>) for every row in insertion order.
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      fn(entry_keys_[i], RowAt(i));
    }
  }

  /// Removes all rows but keeps capacity (cheap reuse across batches).
  void Clear() {
    for (Slot& s : slots_) s.key = kEmpty;
    entry_keys_.clear();
    arena_.clear();
  }

 private:
  static constexpr int32_t kEmpty = -1;

  struct Slot {
    int32_t key = kEmpty;
    uint32_t index = 0;
  };

  static size_t Hash(int32_t key) {
    // Finalizer of splitmix32: good avalanche for sequential ids.
    uint32_t x = static_cast<uint32_t>(key);
    x = (x ^ (x >> 16)) * 0x7FEB352DU;
    x = (x ^ (x >> 15)) * 0x846CA68BU;
    return x ^ (x >> 16);
  }

  size_t Probe(int32_t key) const {
    PLP_CHECK_GE(key, 0);
    size_t slot = Hash(key) & mask_;
    while (slots_[slot].key != kEmpty && slots_[slot].key != key) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  std::span<double> RowAt(size_t index) {
    return {arena_.data() + index * dim_, dim_};
  }
  std::span<const double> RowAt(size_t index) const {
    return {arena_.data() + index * dim_, dim_};
  }

  void Rehash(size_t new_capacity) {
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      size_t slot = Hash(entry_keys_[i]) & mask_;
      while (slots_[slot].key != kEmpty) slot = (slot + 1) & mask_;
      slots_[slot].key = entry_keys_[i];
      slots_[slot].index = static_cast<uint32_t>(i);
    }
  }

  size_t dim_;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<int32_t> entry_keys_;
  std::vector<double> arena_;
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_ROW_MAP_H_
