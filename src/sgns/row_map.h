#ifndef PLP_SGNS_ROW_MAP_H_
#define PLP_SGNS_ROW_MAP_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"

namespace plp::sgns {

/// Open-addressing hash map from int32 row id to a fixed-width row of
/// doubles, stored contiguously in insertion order.
///
/// This is the hot data structure of local training: every candidate row
/// access in the sampled-softmax inner loop goes through one of these. It
/// beats std::unordered_map by avoiding per-node allocation and pointer
/// chasing — rows live in one arena, and the table is a flat probe array.
/// Erasure is intentionally unsupported (training only ever inserts).
///
/// The arena is 64-byte aligned. Rows of SIMD-relevant width (dim >= 8)
/// are stored at a stride of PaddedRowStride(dim) doubles, so every row
/// starts on a cache-line boundary (matching SgnsModel's layout); narrow
/// rows (dim < 8 — notably the dim = 1 scalar maps for B') are packed
/// dense, because padding a scalar to a full cache line would multiply
/// the arena's footprint by 8 for loops the vector kernels never touch.
/// Row spans expose only the logical dim entries; any padding tail stays
/// at its zero-initialized value for the row's lifetime.
class RowMap {
 public:
  /// `dim` >= 1 doubles per row (use dim = 1 for scalar maps like B').
  explicit RowMap(int32_t dim)
      : dim_(static_cast<size_t>(dim)),
        stride_(dim_ < 8 ? dim_ : PaddedRowStride(dim_)) {
    PLP_CHECK_GE(dim, 1);
    Rehash(16);
  }

  size_t size() const { return entry_keys_.size(); }
  bool empty() const { return entry_keys_.empty(); }
  int32_t dim() const { return static_cast<int32_t>(dim_); }

  /// Doubles between consecutive row starts (== dim() when rows are
  /// packed dense, PaddedRowStride(dim) otherwise).
  size_t stride() const { return stride_; }

  /// All rows as one contiguous span: size() rows of stride() doubles in
  /// insertion order, with any padding tail exactly 0.0. Whole-map
  /// reductions (e.g. SparseDelta::TensorNorm) run one long kernel pass
  /// over this instead of size() row-sized ones; the zero padding
  /// contributes nothing to sums of squares.
  std::span<const double> Flat() const {
    return {arena_.data(), entry_keys_.size() * stride_};
  }

  /// Returns the row for `key`, inserting a zero-filled row if absent.
  /// `inserted` (optional) reports whether the row is new. Spans are
  /// invalidated by the next insertion.
  std::span<double> FindOrInsertZero(int32_t key, bool* inserted = nullptr) {
    size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) {
      if ((entry_keys_.size() + 1) * 4 > slots_.size() * 3) {
        Rehash(slots_.size() * 2);
        slot = Probe(key);
      }
      slots_[slot].key = key;
      slots_[slot].index = static_cast<uint32_t>(entry_keys_.size());
      const size_t offset = entry_keys_.size() * stride_;
      entry_keys_.push_back(key);
      // The arena's size is its capacity: it never shrinks (Clear() keeps
      // it), so the steady-state insert is one inlined fill of the new
      // row — resize()'s out-of-line element construction on every insert
      // was the single hottest call in the whole trainer profile.
      if (arena_.size() < offset + stride_) {
        // Geometric growth; resize value-initializes the new region to 0.
        arena_.resize(std::max(arena_.size() * 2, offset + stride_));
      } else {
        // Reused storage may hold a stale row from before a Clear().
        std::fill_n(arena_.data() + offset, stride_, 0.0);
      }
      if (inserted != nullptr) *inserted = true;
      return RowAt(entry_keys_.size() - 1);
    }
    if (inserted != nullptr) *inserted = false;
    return RowAt(slots_[slot].index);
  }

  /// Returns the row for `key`, or an empty span if absent.
  std::span<const double> Find(int32_t key) const {
    const size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) return {};
    return RowAt(slots_[slot].index);
  }

  std::span<double> FindMutable(int32_t key) {
    const size_t slot = Probe(key);
    if (slots_[slot].key == kEmpty) return {};
    return RowAt(slots_[slot].index);
  }

  /// Calls fn(key, std::span<const double>) for every row in insertion
  /// order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      fn(entry_keys_[i], RowAt(i));
    }
  }

  /// Calls fn(key, std::span<double>) for every row in insertion order.
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      fn(entry_keys_[i], RowAt(i));
    }
  }

  /// Removes all rows but keeps capacity (cheap reuse across batches).
  /// Stale arena contents are re-zeroed row-by-row on reuse.
  void Clear() {
    for (Slot& s : slots_) s.key = kEmpty;
    entry_keys_.clear();
  }

  /// Pre-sizes the probe table and arena for `rows` rows, so a burst of
  /// inserts of known cardinality (e.g. delta extraction) skips the
  /// rehash-and-regrow ladder a fresh map would otherwise climb.
  void Reserve(size_t rows) {
    size_t capacity = slots_.size();
    while (rows * 4 > capacity * 3) capacity *= 2;
    if (capacity != slots_.size()) Rehash(capacity);
    if (arena_.size() < rows * stride_) arena_.resize(rows * stride_);
    entry_keys_.reserve(rows);
  }

 private:
  static constexpr int32_t kEmpty = -1;

  struct Slot {
    int32_t key = kEmpty;
    uint32_t index = 0;
  };

  static size_t Hash(int32_t key) {
    // Finalizer of splitmix32: good avalanche for sequential ids.
    uint32_t x = static_cast<uint32_t>(key);
    x = (x ^ (x >> 16)) * 0x7FEB352DU;
    x = (x ^ (x >> 15)) * 0x846CA68BU;
    return x ^ (x >> 16);
  }

  size_t Probe(int32_t key) const {
    PLP_CHECK_GE(key, 0);
    size_t slot = Hash(key) & mask_;
    while (slots_[slot].key != kEmpty && slots_[slot].key != key) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  std::span<double> RowAt(size_t index) {
    return {arena_.data() + index * stride_, dim_};
  }
  std::span<const double> RowAt(size_t index) const {
    return {arena_.data() + index * stride_, dim_};
  }

  void Rehash(size_t new_capacity) {
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    for (size_t i = 0; i < entry_keys_.size(); ++i) {
      size_t slot = Hash(entry_keys_[i]) & mask_;
      while (slots_[slot].key != kEmpty) slot = (slot + 1) & mask_;
      slots_[slot].key = entry_keys_[i];
      slots_[slot].index = static_cast<uint32_t>(i);
    }
  }

  size_t dim_;
  size_t stride_;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<int32_t> entry_keys_;
  AlignedVector<double> arena_;
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_ROW_MAP_H_
