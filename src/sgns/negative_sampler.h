#ifndef PLP_SGNS_NEGATIVE_SAMPLER_H_
#define PLP_SGNS_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace plp::sgns {

/// Frequency-proportional negative sampling table: candidate c is drawn
/// with probability count(c)^power / Σ count(l)^power — the word2vec
/// unigram^0.75 law, realized as a Walker alias table so a draw is O(1)
/// (one uniform integer + one uniform real) at any vocabulary size.
///
/// The default DP path keeps *uniform* negatives: the paper avoids
/// frequency-based candidate sampling because the frequencies themselves
/// are data-derived and would leak outside the DP accounting (Section
/// 3.2). The unigram table is the non-private / research option and an
/// ingredient for utility studies at 10^5–10^6 POIs, where uniform
/// negatives are almost always never-visited locations.
///
/// Every draw consumes exactly two RNG values regardless of the outcome,
/// so swapping the table in or out cannot desynchronize the pinned RNG
/// streams of other stages (determinism contract in pipeline/stages.h).
class UnigramTable {
 public:
  /// Builds the table from per-location token counts. Locations with zero
  /// count get zero probability; if every count is zero the table
  /// degenerates to uniform (so a freshly built corpus never aborts).
  UnigramTable(std::span<const int64_t> counts, double power);

  int32_t num_locations() const {
    return static_cast<int32_t>(alias_.size());
  }

  /// Draws one location id. Exactly two RNG draws per call.
  int32_t Sample(Rng& rng) const {
    return static_cast<int32_t>(alias_.Sample(rng));
  }

  /// The sampling probability of `location` (for goodness-of-fit tests).
  double Probability(int32_t location) const {
    return probabilities_[static_cast<size_t>(location)];
  }

 private:
  explicit UnigramTable(std::vector<double> probabilities);

  // Declaration order matters: alias_ is built from `probabilities` before
  // the delegate constructor moves it into probabilities_.
  AliasSampler alias_;
  std::vector<double> probabilities_;
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_NEGATIVE_SAMPLER_H_
