#include "sgns/pairs.h"

#include <algorithm>

#include "common/check.h"

namespace plp::sgns {

size_t PairCount(size_t tokens, int32_t window) {
  PLP_CHECK_GT(window, 0);
  if (tokens <= 1) return 0;
  const size_t w = static_cast<size_t>(window);
  // Window covers the whole sentence: every ordered pair of distinct
  // positions. Otherwise each token sees 2w neighbors except for the w
  // tokens at each edge, which lose 1..w of them (w(w+1) total).
  if (tokens <= w + 1) return tokens * (tokens - 1);
  return 2 * w * tokens - w * (w + 1);
}

std::vector<Pair> GeneratePairs(std::span<const int32_t> sentence,
                                int32_t window) {
  std::vector<Pair> pairs;
  pairs.reserve(PairCount(sentence.size(), window));
  AppendPairs(sentence, window, pairs);
  return pairs;
}

void AppendPairs(std::span<const int32_t> sentence, int32_t window,
                 std::vector<Pair>& out) {
  PLP_CHECK_GT(window, 0);
  const int64_t n = static_cast<int64_t>(sentence.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - window);
    const int64_t hi = std::min<int64_t>(n - 1, i + window);
    for (int64_t j = lo; j <= hi; ++j) {
      if (j == i) continue;
      out.push_back(Pair{sentence[i], sentence[j]});
    }
  }
}

std::vector<std::vector<Pair>> MakeBatches(std::vector<Pair> pairs,
                                           int32_t batch_size, Rng& rng) {
  PLP_CHECK_GT(batch_size, 0);
  rng.Shuffle(pairs);
  std::vector<std::vector<Pair>> batches;
  for (size_t start = 0; start < pairs.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(pairs.size(), start + static_cast<size_t>(batch_size));
    batches.emplace_back(pairs.begin() + static_cast<int64_t>(start),
                         pairs.begin() + static_cast<int64_t>(end));
  }
  return batches;
}

}  // namespace plp::sgns
