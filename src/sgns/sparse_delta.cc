#include "sgns/sparse_delta.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "common/parallel_ops.h"
#include "common/thread_pool.h"

namespace plp::sgns {

DenseUpdate::DenseUpdate(const SgnsModel& model)
    : num_locations_(model.num_locations()),
      dim_(model.dim()),
      w_in_(static_cast<size_t>(num_locations_) * dim_, 0.0),
      w_out_(static_cast<size_t>(num_locations_) * dim_, 0.0),
      bias_(static_cast<size_t>(num_locations_), 0.0) {}

std::span<double> DenseUpdate::TensorData(Tensor t) {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

std::span<const double> DenseUpdate::TensorData(Tensor t) const {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

void DenseUpdate::AddGaussianNoise(uint64_t noise_seed, double stddev,
                                   ThreadPool* pool) {
  for (int ti = 0; ti < kNumTensors; ++ti) {
    AddGaussianNoiseToTensor(static_cast<Tensor>(ti), noise_seed, stddev,
                             pool);
  }
}

void DenseUpdate::AddGaussianNoise(Rng& rng, double stddev) {
  rng.AddGaussianNoise(w_in_, stddev);
  rng.AddGaussianNoise(w_out_, stddev);
  rng.AddGaussianNoise(bias_, stddev);
}

void DenseUpdate::AddGaussianNoiseToTensor(Tensor t, uint64_t noise_seed,
                                           double stddev, ThreadPool* pool) {
  // One decorrelated stream lane per tensor: the per-tensor overload seeds
  // the same lane the all-tensor overload would, so the two compose.
  const uint64_t stream =
      DeriveStreamSeed(noise_seed, static_cast<uint64_t>(t));
  AddGaussianNoiseBlocks(TensorData(t), stream, stddev, pool);
}

void DenseUpdate::AddGaussianNoiseToTensor(Tensor t, Rng& rng,
                                           double stddev) {
  rng.AddGaussianNoise(TensorData(t), stddev);
}

void DenseUpdate::Zero(ThreadPool* pool) {
  ZeroBlocks(w_in_, pool);
  ZeroBlocks(w_out_, pool);
  ZeroBlocks(bias_, pool);
}

void DenseUpdate::Scale(double factor, ThreadPool* pool) {
  ScaleBlocks(w_in_, factor, pool);
  ScaleBlocks(w_out_, factor, pool);
  ScaleBlocks(bias_, factor, pool);
}

double DenseUpdate::Norm(ThreadPool* pool) const {
  const double s = SumSquaresBlocks(w_in_, pool) +
                   SumSquaresBlocks(w_out_, pool) +
                   SumSquaresBlocks(bias_, pool);
  return std::sqrt(s);
}

void DenseUpdate::ApplyTo(SgnsModel& model) const {
  PLP_CHECK_EQ(model.num_locations(), num_locations_);
  PLP_CHECK_EQ(model.dim(), dim_);
  // The update is stored unpadded while the model rows are padded, so the
  // W/W' tensors are applied row by row. Axpy is element-independent:
  // row-wise application is bitwise identical to one flat pass.
  const size_t dim = static_cast<size_t>(dim_);
  for (int32_t l = 0; l < num_locations_; ++l) {
    const size_t base = static_cast<size_t>(l) * dim;
    AxpyKernel(1.0, w_in_.data() + base, model.MutableInRow(l).data(), dim);
    AxpyKernel(1.0, w_out_.data() + base, model.MutableOutRow(l).data(), dim);
  }
  std::span<double> bias_dst = model.MutableTensorData(Tensor::kBias);
  AxpyKernel(1.0, bias_.data(), bias_dst.data(), bias_dst.size());
}

SparseDelta::SparseDelta(int32_t dim)
    : dim_(dim), in_rows_(dim), out_rows_(dim), bias_(1) {
  PLP_CHECK_GT(dim, 0);
}

RowMap& SparseDelta::StoreFor(Tensor t) {
  switch (t) {
    case Tensor::kWIn:
      return in_rows_;
    case Tensor::kWOut:
      return out_rows_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return in_rows_;
}

const RowMap& SparseDelta::StoreFor(Tensor t) const {
  return const_cast<SparseDelta*>(this)->StoreFor(t);
}

double SparseDelta::TensorNorm(Tensor t) const {
  // One contiguous kernel pass over the store's arena prefix. Row padding
  // is exactly 0.0 (RowMap invariant), so including it adds only +0.0
  // terms; the 16-lane reduction spec keeps the result machine- and
  // thread-count-independent.
  const std::span<const double> flat = StoreFor(t).Flat();
  return std::sqrt(SumSquaresKernel(flat.data(), flat.size()));
}

double SparseDelta::TotalNorm() const {
  double s = 0.0;
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const double n = TensorNorm(static_cast<Tensor>(ti));
    s += n * n;
  }
  return std::sqrt(s);
}

void SparseDelta::ScaleTensor(Tensor t, double factor) {
  StoreFor(t).ForEachMutable([&](int32_t, std::span<double> row) {
    for (double& v : row) v *= factor;
  });
}

void SparseDelta::Scale(double factor) {
  for (int ti = 0; ti < kNumTensors; ++ti) {
    ScaleTensor(static_cast<Tensor>(ti), factor);
  }
}

bool SparseDelta::ClipPerTensor(double per_tensor_max) {
  PLP_CHECK_GT(per_tensor_max, 0.0);
  bool engaged = false;
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const Tensor t = static_cast<Tensor>(ti);
    const double norm = TensorNorm(t);
    if (norm > per_tensor_max) {
      ScaleTensor(t, per_tensor_max / norm);
      engaged = true;
    }
  }
  return engaged;
}

bool SparseDelta::ClipTotal(double max_norm) {
  PLP_CHECK_GT(max_norm, 0.0);
  const double norm = TotalNorm();
  if (norm > max_norm) {
    Scale(max_norm / norm);
    return true;
  }
  return false;
}

void SparseDelta::AccumulateInto(DenseUpdate& sum, double scale) const {
  PLP_CHECK_EQ(sum.dim(), dim_);
  for (const Tensor t : {Tensor::kWIn, Tensor::kWOut, Tensor::kBias}) {
    AccumulateTensorRangeInto(sum, scale, t, 0, sum.num_locations());
  }
}

void SparseDelta::AccumulateTensorRangeInto(DenseUpdate& sum, double scale,
                                            Tensor tensor, int32_t row_begin,
                                            int32_t row_end) const {
  PLP_CHECK_EQ(sum.dim(), dim_);
  std::span<double> dst = sum.TensorData(tensor);
  if (tensor == Tensor::kBias) {
    bias_.ForEach([&](int32_t row, std::span<const double> v) {
      if (row < row_begin || row >= row_end) return;
      dst[static_cast<size_t>(row)] += scale * v[0];
    });
    return;
  }
  StoreFor(tensor).ForEach([&](int32_t row, std::span<const double> vec) {
    if (row < row_begin || row >= row_end) return;
    AxpyKernel(scale, vec.data(),
               dst.data() + static_cast<size_t>(row) * dim_,
               static_cast<size_t>(dim_));
  });
}

void SparseDelta::ApplyTo(SgnsModel& model, double scale) const {
  PLP_CHECK_EQ(model.dim(), dim_);
  const size_t dim = static_cast<size_t>(dim_);
  in_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    AxpyKernel(scale, vec.data(), model.MutableInRow(row).data(), dim);
  });
  out_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    AxpyKernel(scale, vec.data(), model.MutableOutRow(row).data(), dim);
  });
  bias_.ForEach([&](int32_t row, std::span<const double> v) {
    model.mutable_bias(row) += scale * v[0];
  });
}

void AccumulateDeltas(std::span<const SparseDelta* const> deltas,
                      double scale, DenseUpdate& sum, ThreadPool* pool) {
  const int32_t num_rows = sum.num_locations();
  size_t live = 0;
  for (const SparseDelta* d : deltas) {
    if (d != nullptr) ++live;
  }
  if (live == 0) return;
  if (pool == nullptr || live == 1 || num_rows < 2) {
    for (const SparseDelta* d : deltas) {
      if (d != nullptr) d->AccumulateInto(sum, scale);
    }
    return;
  }
  // (tensor, row-range) shards write disjoint regions of `sum`. Each shard
  // scans every delta in index order, so per-coordinate addition order is
  // identical to the serial loop above. Oversubscribe the pool a little so
  // shards that hit dense row ranges don't straggle.
  const int32_t target_shards = static_cast<int32_t>(
      std::min<size_t>(static_cast<size_t>(num_rows),
                       2 * std::max<size_t>(1, pool->num_threads())));
  const int32_t rows_per_shard =
      (num_rows + target_shards - 1) / target_shards;
  struct Shard {
    Tensor tensor;
    int32_t begin;
    int32_t end;
  };
  std::vector<Shard> shards;
  shards.reserve(static_cast<size_t>(2 * target_shards) + 1);
  for (const Tensor t : {Tensor::kWIn, Tensor::kWOut}) {
    for (int32_t begin = 0; begin < num_rows; begin += rows_per_shard) {
      shards.push_back(
          Shard{t, begin, std::min(num_rows, begin + rows_per_shard)});
    }
  }
  // The bias tensor is dim-1 — a single cheap shard.
  shards.push_back(Shard{Tensor::kBias, 0, num_rows});
  pool->ParallelFor(shards.size(), [&](size_t s) {
    const Shard& shard = shards[s];
    for (const SparseDelta* d : deltas) {
      if (d == nullptr) continue;
      d->AccumulateTensorRangeInto(sum, scale, shard.tensor, shard.begin,
                                   shard.end);
    }
  });
}

SparseDelta DiffModels(const SgnsModel& phi, const SgnsModel& theta) {
  PLP_CHECK_EQ(phi.num_locations(), theta.num_locations());
  PLP_CHECK_EQ(phi.dim(), theta.dim());
  const int32_t dim = phi.dim();
  SparseDelta delta(dim);
  const size_t row_len = static_cast<size_t>(dim);
  for (int32_t l = 0; l < phi.num_locations(); ++l) {
    const std::span<const double> a = phi.InRow(l);
    const std::span<const double> b = theta.InRow(l);
    for (int32_t d = 0; d < dim; ++d) {
      if (a[d] != b[d]) {
        std::span<double> row = delta.Row(Tensor::kWIn, l);
        SubKernel(a.data(), b.data(), row.data(), row_len);
        break;
      }
    }
    const std::span<const double> ao = phi.OutRow(l);
    const std::span<const double> bo = theta.OutRow(l);
    for (int32_t d = 0; d < dim; ++d) {
      if (ao[d] != bo[d]) {
        std::span<double> row = delta.Row(Tensor::kWOut, l);
        SubKernel(ao.data(), bo.data(), row.data(), row_len);
        break;
      }
    }
    if (phi.bias(l) != theta.bias(l)) {
      delta.AddBias(l, phi.bias(l) - theta.bias(l));
    }
  }
  return delta;
}

size_t SparseDelta::NumTouchedEntries() const {
  return in_rows_.size() + out_rows_.size() + bias_.size();
}

void SparseDelta::Clear() {
  in_rows_.Clear();
  out_rows_.Clear();
  bias_.Clear();
}

}  // namespace plp::sgns
