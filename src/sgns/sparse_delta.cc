#include "sgns/sparse_delta.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace plp::sgns {

DenseUpdate::DenseUpdate(const SgnsModel& model)
    : num_locations_(model.num_locations()),
      dim_(model.dim()),
      w_in_(static_cast<size_t>(num_locations_) * dim_, 0.0),
      w_out_(static_cast<size_t>(num_locations_) * dim_, 0.0),
      bias_(static_cast<size_t>(num_locations_), 0.0) {}

std::span<double> DenseUpdate::TensorData(Tensor t) {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

std::span<const double> DenseUpdate::TensorData(Tensor t) const {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

void DenseUpdate::AddGaussianNoise(Rng& rng, double stddev) {
  rng.AddGaussianNoise(w_in_, stddev);
  rng.AddGaussianNoise(w_out_, stddev);
  rng.AddGaussianNoise(bias_, stddev);
}

void DenseUpdate::AddGaussianNoiseToTensor(Tensor t, Rng& rng,
                                           double stddev) {
  rng.AddGaussianNoise(TensorData(t), stddev);
}

void DenseUpdate::Zero() {
  std::fill(w_in_.begin(), w_in_.end(), 0.0);
  std::fill(w_out_.begin(), w_out_.end(), 0.0);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

void DenseUpdate::Scale(double factor) {
  for (double& v : w_in_) v *= factor;
  for (double& v : w_out_) v *= factor;
  for (double& v : bias_) v *= factor;
}

double DenseUpdate::Norm() const {
  double s = 0.0;
  for (double v : w_in_) s += v * v;
  for (double v : w_out_) s += v * v;
  for (double v : bias_) s += v * v;
  return std::sqrt(s);
}

void DenseUpdate::ApplyTo(SgnsModel& model) const {
  PLP_CHECK_EQ(model.num_locations(), num_locations_);
  PLP_CHECK_EQ(model.dim(), dim_);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const Tensor t = static_cast<Tensor>(ti);
    std::span<double> dst = model.MutableTensorData(t);
    std::span<const double> src = TensorData(t);
    for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
  }
}

SparseDelta::SparseDelta(int32_t dim)
    : dim_(dim), in_rows_(dim), out_rows_(dim), bias_(1) {
  PLP_CHECK_GT(dim, 0);
}

RowMap& SparseDelta::StoreFor(Tensor t) {
  switch (t) {
    case Tensor::kWIn:
      return in_rows_;
    case Tensor::kWOut:
      return out_rows_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return in_rows_;
}

const RowMap& SparseDelta::StoreFor(Tensor t) const {
  return const_cast<SparseDelta*>(this)->StoreFor(t);
}

std::span<double> SparseDelta::Row(Tensor tensor, int32_t row) {
  PLP_CHECK(tensor == Tensor::kWIn || tensor == Tensor::kWOut);
  return StoreFor(tensor).FindOrInsertZero(row);
}

void SparseDelta::AddBias(int32_t row, double value) {
  bias_.FindOrInsertZero(row)[0] += value;
}

double SparseDelta::TensorNorm(Tensor t) const {
  double s = 0.0;
  StoreFor(t).ForEach([&](int32_t, std::span<const double> row) {
    for (double v : row) s += v * v;
  });
  return std::sqrt(s);
}

double SparseDelta::TotalNorm() const {
  double s = 0.0;
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const double n = TensorNorm(static_cast<Tensor>(ti));
    s += n * n;
  }
  return std::sqrt(s);
}

void SparseDelta::ScaleTensor(Tensor t, double factor) {
  StoreFor(t).ForEachMutable([&](int32_t, std::span<double> row) {
    for (double& v : row) v *= factor;
  });
}

void SparseDelta::Scale(double factor) {
  for (int ti = 0; ti < kNumTensors; ++ti) {
    ScaleTensor(static_cast<Tensor>(ti), factor);
  }
}

void SparseDelta::ClipPerTensor(double per_tensor_max) {
  PLP_CHECK_GT(per_tensor_max, 0.0);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const Tensor t = static_cast<Tensor>(ti);
    const double norm = TensorNorm(t);
    if (norm > per_tensor_max) ScaleTensor(t, per_tensor_max / norm);
  }
}

void SparseDelta::ClipTotal(double max_norm) {
  PLP_CHECK_GT(max_norm, 0.0);
  const double norm = TotalNorm();
  if (norm > max_norm) Scale(max_norm / norm);
}

void SparseDelta::AccumulateInto(DenseUpdate& sum, double scale) const {
  PLP_CHECK_EQ(sum.dim(), dim_);
  for (const Tensor t : {Tensor::kWIn, Tensor::kWOut}) {
    std::span<double> dst = sum.TensorData(t);
    StoreFor(t).ForEach([&](int32_t row, std::span<const double> vec) {
      double* out = dst.data() + static_cast<size_t>(row) * dim_;
      for (int32_t d = 0; d < dim_; ++d) out[d] += scale * vec[d];
    });
  }
  std::span<double> dst = sum.TensorData(Tensor::kBias);
  bias_.ForEach([&](int32_t row, std::span<const double> v) {
    dst[static_cast<size_t>(row)] += scale * v[0];
  });
}

void SparseDelta::ApplyTo(SgnsModel& model, double scale) const {
  PLP_CHECK_EQ(model.dim(), dim_);
  in_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> dst = model.MutableInRow(row);
    for (int32_t d = 0; d < dim_; ++d) dst[d] += scale * vec[d];
  });
  out_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> dst = model.MutableOutRow(row);
    for (int32_t d = 0; d < dim_; ++d) dst[d] += scale * vec[d];
  });
  bias_.ForEach([&](int32_t row, std::span<const double> v) {
    model.mutable_bias(row) += scale * v[0];
  });
}

SparseDelta DiffModels(const SgnsModel& phi, const SgnsModel& theta) {
  PLP_CHECK_EQ(phi.num_locations(), theta.num_locations());
  PLP_CHECK_EQ(phi.dim(), theta.dim());
  const int32_t dim = phi.dim();
  SparseDelta delta(dim);
  for (int32_t l = 0; l < phi.num_locations(); ++l) {
    const std::span<const double> a = phi.InRow(l);
    const std::span<const double> b = theta.InRow(l);
    for (int32_t d = 0; d < dim; ++d) {
      if (a[d] != b[d]) {
        std::span<double> row = delta.Row(Tensor::kWIn, l);
        for (int32_t e = 0; e < dim; ++e) row[e] = a[e] - b[e];
        break;
      }
    }
    const std::span<const double> ao = phi.OutRow(l);
    const std::span<const double> bo = theta.OutRow(l);
    for (int32_t d = 0; d < dim; ++d) {
      if (ao[d] != bo[d]) {
        std::span<double> row = delta.Row(Tensor::kWOut, l);
        for (int32_t e = 0; e < dim; ++e) row[e] = ao[e] - bo[e];
        break;
      }
    }
    if (phi.bias(l) != theta.bias(l)) {
      delta.AddBias(l, phi.bias(l) - theta.bias(l));
    }
  }
  return delta;
}

size_t SparseDelta::NumTouchedEntries() const {
  return in_rows_.size() + out_rows_.size() + bias_.size();
}

void SparseDelta::Clear() {
  in_rows_.Clear();
  out_rows_.Clear();
  bias_.Clear();
}

}  // namespace plp::sgns
