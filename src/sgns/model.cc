#include "sgns/model.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace plp::sgns {

Result<SgnsModel> SgnsModel::Create(int32_t num_locations,
                                    const SgnsConfig& config, Rng& rng) {
  if (num_locations <= 0) {
    return InvalidArgumentError("num_locations must be > 0");
  }
  if (config.embedding_dim <= 0) {
    return InvalidArgumentError("embedding_dim must be > 0");
  }
  SgnsModel model;
  model.num_locations_ = num_locations;
  model.dim_ = config.embedding_dim;
  model.stride_ = PaddedRowStride(static_cast<size_t>(model.dim_));
  const size_t storage_size =
      static_cast<size_t>(num_locations) * model.stride_;
  model.w_in_.assign(storage_size, 0.0);
  model.w_out_.assign(storage_size, 0.0);
  model.bias_.assign(static_cast<size_t>(num_locations), 0.0);
  const double scale = config.init_scale > 0.0
                           ? config.init_scale
                           : 0.5 / static_cast<double>(model.dim_);
  // Row-wise over the logical dims: the uniform draw sequence matches the
  // unpadded layout, and the padding tail stays at its assigned 0.0.
  for (int32_t l = 0; l < num_locations; ++l) {
    const std::span<double> row = model.MutableInRow(l);
    for (double& w : row) w = rng.Uniform(-scale, scale);
  }
  return model;
}

int64_t SgnsModel::num_parameters() const {
  return 2LL * num_locations_ * dim_ + num_locations_;
}

size_t SgnsModel::TensorNumel(Tensor t) const {
  const size_t locations = static_cast<size_t>(num_locations_);
  return t == Tensor::kBias ? locations
                            : locations * static_cast<size_t>(dim_);
}

std::span<const double> SgnsModel::InRow(int32_t location) const {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return {w_in_.data() + static_cast<size_t>(location) * stride_,
          static_cast<size_t>(dim_)};
}

std::span<double> SgnsModel::MutableInRow(int32_t location) {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return {w_in_.data() + static_cast<size_t>(location) * stride_,
          static_cast<size_t>(dim_)};
}

std::span<const double> SgnsModel::OutRow(int32_t location) const {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return {w_out_.data() + static_cast<size_t>(location) * stride_,
          static_cast<size_t>(dim_)};
}

std::span<double> SgnsModel::MutableOutRow(int32_t location) {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return {w_out_.data() + static_cast<size_t>(location) * stride_,
          static_cast<size_t>(dim_)};
}

double SgnsModel::bias(int32_t location) const {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return bias_[static_cast<size_t>(location)];
}

double& SgnsModel::mutable_bias(int32_t location) {
  PLP_CHECK(location >= 0 && location < num_locations_);
  return bias_[static_cast<size_t>(location)];
}

std::span<const double> SgnsModel::TensorData(Tensor t) const {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

std::span<double> SgnsModel::MutableTensorData(Tensor t) {
  switch (t) {
    case Tensor::kWIn:
      return w_in_;
    case Tensor::kWOut:
      return w_out_;
    case Tensor::kBias:
      return bias_;
  }
  PLP_CHECK(false);
  return {};
}

double SgnsModel::TensorNorm(Tensor t) const { return L2Norm(TensorData(t)); }

std::vector<double> SgnsModel::NormalizedEmbeddings() const {
  std::vector<double> out(TensorNumel(Tensor::kWIn));
  for (int32_t l = 0; l < num_locations_; ++l) {
    const std::span<const double> row = InRow(l);
    const std::span<double> dst{
        out.data() + static_cast<size_t>(l) * dim_, static_cast<size_t>(dim_)};
    for (size_t i = 0; i < dst.size(); ++i) dst[i] = row[i];
    NormalizeL2(dst);
  }
  return out;
}

}  // namespace plp::sgns
