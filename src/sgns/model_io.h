#ifndef PLP_SGNS_MODEL_IO_H_
#define PLP_SGNS_MODEL_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sgns/model.h"

namespace plp::sgns {

/// Binary model serialization (Section 3.3: a trained model is shipped to
/// user devices; "to reduce communication costs, only the embedding matrix
/// is deployed").
///
/// Format: magic "PLPM", format version, L, dim, then tensors as raw
/// little-endian doubles. Full models carry {W, W', B'}; deployment models
/// carry the unit-normalized W only.
///
/// Saves are atomic (write temp in the same directory, fsync, rename):
/// a process killed mid-save never leaves a torn artifact — readers see
/// either the previous complete file or the new one.

/// Writes the full model (all three tensors).
Status SaveModel(const SgnsModel& model, const std::string& path);

/// Reads a model written by SaveModel.
Result<SgnsModel> LoadModel(const std::string& path);

/// Writes only the unit-normalized embedding matrix — the deployment
/// artifact a mobile device downloads.
Status SaveEmbeddings(const SgnsModel& model, const std::string& path);

/// Deployment-side view of SaveEmbeddings output: the normalized
/// embedding matrix, ready to feed eval::Recommender-style scoring.
struct DeployedEmbeddings {
  int32_t num_locations = 0;
  int32_t dim = 0;
  std::vector<double> embeddings;  ///< row-major L × dim, unit rows
};
Result<DeployedEmbeddings> LoadEmbeddings(const std::string& path);

}  // namespace plp::sgns

#endif  // PLP_SGNS_MODEL_IO_H_
