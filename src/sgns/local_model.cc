#include "sgns/local_model.h"

namespace plp::sgns {

SparseDelta LocalModel::ExtractDelta() const {
  SparseDelta delta(dim());
  in_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> d = delta.Row(Tensor::kWIn, row);
    const std::span<const double> base_row = base_->InRow(row);
    for (int32_t i = 0; i < dim(); ++i) d[i] = vec[i] - base_row[i];
  });
  out_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> d = delta.Row(Tensor::kWOut, row);
    const std::span<const double> base_row = base_->OutRow(row);
    for (int32_t i = 0; i < dim(); ++i) d[i] = vec[i] - base_row[i];
  });
  bias_.ForEach([&](int32_t row, std::span<const double> v) {
    delta.AddBias(row, v[0] - base_->bias(row));
  });
  return delta;
}

}  // namespace plp::sgns
