#include "sgns/local_model.h"

#include "common/math_util.h"

namespace plp::sgns {

SparseDelta LocalModel::ExtractDelta() const {
  SparseDelta delta(dim());
  ExtractDeltaInto(delta);
  return delta;
}

void LocalModel::ExtractDeltaInto(SparseDelta& delta) const {
  PLP_CHECK_EQ(delta.dim(), dim());
  delta.Clear();
  delta.Reserve(in_rows_.size(), out_rows_.size(), bias_.size());
  const size_t dim = static_cast<size_t>(this->dim());
  in_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> d = delta.Row(Tensor::kWIn, row);
    SubKernel(vec.data(), base_->InRow(row).data(), d.data(), dim);
  });
  out_rows_.ForEach([&](int32_t row, std::span<const double> vec) {
    std::span<double> d = delta.Row(Tensor::kWOut, row);
    SubKernel(vec.data(), base_->OutRow(row).data(), d.data(), dim);
  });
  bias_.ForEach([&](int32_t row, std::span<const double> v) {
    delta.AddBias(row, v[0] - base_->bias(row));
  });
}

}  // namespace plp::sgns
