#ifndef PLP_SGNS_LOCAL_MODEL_H_
#define PLP_SGNS_LOCAL_MODEL_H_

#include <cstdint>
#include <span>

#include "common/check.h"
#include "sgns/model.h"
#include "sgns/row_map.h"
#include "sgns/sparse_delta.h"

namespace plp::sgns {

/// Copy-on-write overlay over a base SgnsModel.
///
/// Algorithm 1 line 16 copies θ_t into Φ for each bucket; copying the full
/// model per bucket would be O(L·dim). A LocalModel instead materializes
/// only the rows a bucket's gradient descent touches: reads fall through to
/// the base, writes copy the row first. ExtractDelta() then yields
/// g_h = Φ − θ_t restricted to touched rows — which is exact, because
/// untouched rows have zero delta.
///
/// The base model must outlive the LocalModel and must not be mutated while
/// the overlay is alive.
class LocalModel {
 public:
  explicit LocalModel(const SgnsModel& base)
      : base_(&base), in_rows_(base.dim()), out_rows_(base.dim()), bias_(1) {}

  /// Rebinds the overlay to `base` and drops every touched row, keeping
  /// the row stores' tables and arenas. A reused overlay inserts, probes
  /// and iterates exactly like a freshly constructed one (RowMap behavior
  /// is independent of capacity), so reuse across buckets is bitwise
  /// result-neutral — it only removes the per-bucket grow-from-16-slots
  /// allocation ladder. `base` must have the same dim as the original.
  void Reset(const SgnsModel& base) {
    PLP_CHECK_EQ(base.dim(), dim());
    base_ = &base;
    in_rows_.Clear();
    out_rows_.Clear();
    bias_.Clear();
  }

  int32_t num_locations() const { return base_->num_locations(); }
  int32_t dim() const { return base_->dim(); }

  std::span<const double> InRow(int32_t location) const {
    const std::span<const double> overlay = in_rows_.Find(location);
    return overlay.empty() ? base_->InRow(location) : overlay;
  }

  std::span<double> MutableInRow(int32_t location) {
    return CopyOnWrite(in_rows_, base_->InRow(location), location);
  }

  std::span<const double> OutRow(int32_t location) const {
    const std::span<const double> overlay = out_rows_.Find(location);
    return overlay.empty() ? base_->OutRow(location) : overlay;
  }

  std::span<double> MutableOutRow(int32_t location) {
    return CopyOnWrite(out_rows_, base_->OutRow(location), location);
  }

  double bias(int32_t location) const {
    const std::span<const double> overlay = bias_.Find(location);
    return overlay.empty() ? base_->bias(location) : overlay[0];
  }

  double& mutable_bias(int32_t location) {
    bool inserted = false;
    std::span<double> row = bias_.FindOrInsertZero(location, &inserted);
    if (inserted) row[0] = base_->bias(location);
    return row[0];
  }

  /// Φ − θ_t over the touched rows.
  SparseDelta ExtractDelta() const;

  /// ExtractDelta into an existing delta (Clear()ed first). With a delta
  /// whose row stores already carry enough capacity this performs no
  /// allocation — the engine reuses one delta slot per bucket index across
  /// steps, which keeps the per-step fan-out free of the multi-megabyte
  /// arena alloc/zero/free cycle a by-value extraction pays per bucket.
  void ExtractDeltaInto(SparseDelta& delta) const;

  size_t NumTouchedRows() const {
    return in_rows_.size() + out_rows_.size() + bias_.size();
  }

 private:
  std::span<double> CopyOnWrite(RowMap& store,
                                std::span<const double> base_row,
                                int32_t location) {
    bool inserted = false;
    std::span<double> row = store.FindOrInsertZero(location, &inserted);
    if (inserted) {
      for (size_t i = 0; i < row.size(); ++i) row[i] = base_row[i];
    }
    return row;
  }

  const SgnsModel* base_;
  RowMap in_rows_;
  RowMap out_rows_;
  RowMap bias_;  // dim 1
};

}  // namespace plp::sgns

#endif  // PLP_SGNS_LOCAL_MODEL_H_
