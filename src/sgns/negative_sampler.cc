#include "sgns/negative_sampler.h"

#include <cmath>

#include "common/check.h"

namespace plp::sgns {
namespace {

std::vector<double> SmoothedWeights(std::span<const int64_t> counts,
                                    double power) {
  PLP_CHECK(!counts.empty());
  PLP_CHECK(power >= 0.0);
  std::vector<double> weights(counts.size(), 0.0);
  double total = 0.0;
  for (size_t l = 0; l < counts.size(); ++l) {
    PLP_CHECK(counts[l] >= 0);
    if (counts[l] > 0) {
      weights[l] = std::pow(static_cast<double>(counts[l]), power);
      total += weights[l];
    }
  }
  if (total <= 0.0) {
    // No observed tokens at all: fall back to uniform.
    for (double& w : weights) w = 1.0;
    total = static_cast<double>(weights.size());
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

UnigramTable::UnigramTable(std::span<const int64_t> counts, double power)
    : UnigramTable(SmoothedWeights(counts, power)) {}

UnigramTable::UnigramTable(std::vector<double> probabilities)
    : alias_(probabilities), probabilities_(std::move(probabilities)) {}

}  // namespace plp::sgns
