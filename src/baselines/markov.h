#ifndef PLP_BASELINES_MARKOV_H_
#define PLP_BASELINES_MARKOV_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/corpus.h"

namespace plp::baselines {

/// Configuration of the order-1 Markov-chain next-location baseline
/// (Section 6: "MC-based methods utilize a per-user transition matrix ...
/// Private location recommendation over Markov Chains is studied in [63]",
/// where aggregate transition counts are released under DP).
struct MarkovConfig {
  /// 0 = non-private counts. Otherwise each aggregated transition count is
  /// perturbed with Laplace noise calibrated to user-level sensitivity:
  /// every user's contribution is capped at `max_transitions_per_user`
  /// count increments, so the count vector's L1 sensitivity is that cap
  /// and Laplace(cap / ε) noise per cell yields user-level ε-DP.
  double epsilon = 0.0;

  /// Per-user contribution bound (the cap above). Must be >= 1.
  int64_t max_transitions_per_user = 64;

  /// Additive smoothing blended in from global visit popularity so cold
  /// rows still rank sensibly.
  double popularity_smoothing = 0.1;
};

/// Order-1 Markov next-location model over aggregate transition counts,
/// with an optional user-level DP variant. This is the classical
/// (pre-neural) baseline the paper's related work contrasts against; the
/// benches use it to show where embedding models win.
///
/// Memory is O(L²); construction rejects vocabularies above 4096 locations
/// (the DP variant must materialize noise on *every* cell, including the
/// zero cells, so the matrix cannot stay sparse).
class MarkovModel {
 public:
  /// Trains on the corpus under `config`. Noise (if any) is drawn from
  /// `rng`, so runs are reproducible.
  static Result<MarkovModel> Train(const data::CorpusView& corpus,
                                   const MarkovConfig& config, Rng& rng);

  int32_t num_locations() const { return num_locations_; }

  /// Scores every location as the successor of `current` (the user's most
  /// recent check-in). Requires a valid location id.
  std::vector<double> Scores(int32_t current) const;

  /// Top-k next locations given a trajectory (only the last visit matters
  /// for an order-1 chain; an empty history falls back to popularity).
  std::vector<int32_t> TopK(std::span<const int32_t> history,
                            int32_t k) const;

 private:
  MarkovModel() = default;

  int32_t num_locations_ = 0;
  std::vector<double> transition_;  ///< row-major L × L (possibly noisy)
  std::vector<double> popularity_;  ///< global visit counts (noisy if DP)
  double smoothing_ = 0.0;
};

}  // namespace plp::baselines

#endif  // PLP_BASELINES_MARKOV_H_
