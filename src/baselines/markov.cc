#include "baselines/markov.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp::baselines {
namespace {

constexpr int32_t kMaxLocations = 4096;

/// Laplace(scale) sample via inverse CDF.
double SampleLaplace(Rng& rng, double scale) {
  const double u = rng.Uniform() - 0.5;
  return -scale * std::copysign(std::log1p(-2.0 * std::fabs(u)), u);
}

}  // namespace

Result<MarkovModel> MarkovModel::Train(const data::CorpusView& corpus,
                                       const MarkovConfig& config,
                                       Rng& rng) {
  if (corpus.NumLocations() <= 0 || corpus.NumUsers() == 0) {
    return InvalidArgumentError("empty corpus");
  }
  if (corpus.NumLocations() > kMaxLocations) {
    return InvalidArgumentError(
        "Markov baseline materializes an LxL matrix; vocabulary too large");
  }
  if (config.epsilon < 0.0) {
    return InvalidArgumentError("epsilon must be >= 0");
  }
  if (config.max_transitions_per_user < 1) {
    return InvalidArgumentError("max_transitions_per_user must be >= 1");
  }
  if (config.popularity_smoothing < 0.0) {
    return InvalidArgumentError("popularity_smoothing must be >= 0");
  }

  MarkovModel model;
  model.num_locations_ = corpus.NumLocations();
  model.smoothing_ = config.popularity_smoothing;
  const size_t locations = static_cast<size_t>(corpus.NumLocations());
  model.transition_.assign(locations * locations, 0.0);
  model.popularity_.assign(locations, 0.0);

  std::vector<std::span<const int32_t>> sentences;
  for (int32_t u = 0; u < corpus.NumUsers(); ++u) {
    sentences.clear();
    corpus.AppendUserSentences(u, sentences);
    // User-level contribution bound: count increments stop once the cap is
    // hit, so a user changes the aggregate by at most the cap (in L1).
    int64_t budget = config.epsilon > 0.0
                         ? config.max_transitions_per_user
                         : std::numeric_limits<int64_t>::max();
    for (const auto& sentence : sentences) {
      for (size_t i = 0; i + 1 < sentence.size() && budget > 0; ++i) {
        const size_t a = static_cast<size_t>(sentence[i]);
        const size_t b = static_cast<size_t>(sentence[i + 1]);
        PLP_CHECK_LT(a, locations);
        PLP_CHECK_LT(b, locations);
        model.transition_[a * locations + b] += 1.0;
        model.popularity_[b] += 1.0;
        --budget;
      }
    }
  }

  if (config.epsilon > 0.0) {
    // Half the budget protects the transition matrix, half the popularity
    // vector (sequential composition); each user changes either aggregate
    // by at most the cap in L1.
    const double scale =
        static_cast<double>(config.max_transitions_per_user) /
        (config.epsilon / 2.0);
    for (double& c : model.transition_) c += SampleLaplace(rng, scale);
    for (double& c : model.popularity_) c += SampleLaplace(rng, scale);
    // Counts are non-negative by definition; clamping is post-processing.
    for (double& c : model.transition_) c = std::max(c, 0.0);
    for (double& c : model.popularity_) c = std::max(c, 0.0);
  }
  return model;
}

std::vector<double> MarkovModel::Scores(int32_t current) const {
  PLP_CHECK(current >= 0 && current < num_locations_);
  const size_t locations = static_cast<size_t>(num_locations_);
  double popularity_total = 0.0;
  for (double p : popularity_) popularity_total += p;
  if (popularity_total <= 0.0) popularity_total = 1.0;

  std::vector<double> scores(locations);
  const double* row = transition_.data() +
                      static_cast<size_t>(current) * locations;
  double row_total = 0.0;
  for (size_t b = 0; b < locations; ++b) row_total += row[b];
  if (row_total <= 0.0) row_total = 1.0;
  for (size_t b = 0; b < locations; ++b) {
    scores[b] = row[b] / row_total +
                smoothing_ * popularity_[b] / popularity_total;
  }
  return scores;
}

std::vector<int32_t> MarkovModel::TopK(std::span<const int32_t> history,
                                       int32_t k) const {
  PLP_CHECK_GT(k, 0);
  std::vector<double> scores;
  if (history.empty()) {
    double total = 0.0;
    for (double p : popularity_) total += p;
    if (total <= 0.0) total = 1.0;
    scores.resize(popularity_.size());
    for (size_t b = 0; b < popularity_.size(); ++b) {
      scores[b] = popularity_[b] / total;
    }
  } else {
    scores = Scores(history.back());
  }
  std::vector<int32_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int32_t>(i);
  }
  const size_t take =
      std::min(static_cast<size_t>(k), order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<int64_t>(take),
                    order.end(), [&](int32_t a, int32_t b) {
                      const double sa = scores[static_cast<size_t>(a)];
                      const double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace plp::baselines
