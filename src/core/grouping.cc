#include "core/grouping.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace plp::core {

int64_t Bucket::num_tokens() const {
  int64_t total = 0;
  for (const auto& s : sentences) total += static_cast<int64_t>(s.size());
  return total;
}

std::vector<int32_t> PoissonSampleUsers(int32_t num_users, double q,
                                        Rng& rng) {
  PLP_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<int32_t> sample;
  for (int32_t u = 0; u < num_users; ++u) {
    if (rng.Bernoulli(q)) sample.push_back(u);
  }
  return sample;
}

std::vector<int32_t> FixedBatchSampleUsers(int32_t num_users,
                                           int32_t batch_size, Rng& rng) {
  PLP_CHECK(batch_size >= 1 && batch_size <= num_users);
  // Partial Fisher–Yates over the id range: exactly batch_size UniformInt
  // draws (data-independent count), exactly batch_size distinct users.
  std::vector<int32_t> pool(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) pool[static_cast<size_t>(u)] = u;
  std::vector<int32_t> sample;
  sample.reserve(static_cast<size_t>(batch_size));
  for (int32_t i = 0; i < batch_size; ++i) {
    const size_t j =
        static_cast<size_t>(i) +
        static_cast<size_t>(rng.UniformInt(
            static_cast<uint64_t>(num_users - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[j]);
    sample.push_back(pool[static_cast<size_t>(i)]);
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

namespace {

/// Flattens one user's sentences into a single token stream (used by the
/// ω-split path, which cuts the stream into contiguous parts).
std::vector<int32_t> FlattenUser(const data::CorpusView& corpus,
                                 int32_t user) {
  std::vector<int32_t> tokens;
  std::vector<std::span<const int32_t>> sentences;
  corpus.AppendUserSentences(user, sentences);
  for (const auto& s : sentences) {
    tokens.insert(tokens.end(), s.begin(), s.end());
  }
  return tokens;
}

/// Copies one user's sentences into a bucket. Buckets own their tokens:
/// the per-step copy is bounded by the Poisson sample (qN users), never
/// the corpus, and keeps Bucket bytes — and therefore content-keyed
/// bucket seeds — identical across corpus representations.
void AppendUserToBucket(const data::CorpusView& corpus, int32_t user,
                        Bucket& bucket) {
  std::vector<std::span<const int32_t>> sentences;
  corpus.AppendUserSentences(user, sentences);
  for (const auto& s : sentences) {
    bucket.sentences.emplace_back(s.begin(), s.end());
  }
}

std::vector<Bucket> BuildRandomBuckets(
    const data::CorpusView& corpus,
    std::vector<int32_t> sampled_users, int32_t lambda, Rng& rng) {
  rng.Shuffle(sampled_users);
  std::vector<Bucket> buckets;
  for (size_t start = 0; start < sampled_users.size();
       start += static_cast<size_t>(lambda)) {
    const size_t end = std::min(sampled_users.size(),
                                start + static_cast<size_t>(lambda));
    Bucket bucket;
    for (size_t i = start; i < end; ++i) {
      const int32_t u = sampled_users[i];
      bucket.users.push_back(u);
      AppendUserToBucket(corpus, u, bucket);
    }
    buckets.push_back(std::move(bucket));
  }
  return buckets;
}

std::vector<Bucket> BuildEqualFrequencyBuckets(
    const data::CorpusView& corpus,
    std::vector<int32_t> sampled_users, int32_t lambda) {
  const size_t n = sampled_users.size();
  const size_t num_buckets =
      (n + static_cast<size_t>(lambda) - 1) / static_cast<size_t>(lambda);
  // Longest-processing-time greedy: biggest users first, each to the
  // lightest bucket that still has capacity (every bucket holds <= λ users
  // so "the data records of each user are not split into multiple buckets").
  std::vector<int64_t> user_tokens(n);
  for (size_t i = 0; i < n; ++i) {
    user_tokens[i] = corpus.UserTokenCount(sampled_users[i]);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return user_tokens[a] > user_tokens[b];
  });

  std::vector<Bucket> buckets(num_buckets);
  std::vector<int64_t> load(num_buckets, 0);
  for (size_t idx : order) {
    size_t best = num_buckets;  // invalid
    for (size_t bkt = 0; bkt < num_buckets; ++bkt) {
      if (buckets[bkt].users.size() >= static_cast<size_t>(lambda)) continue;
      if (best == num_buckets || load[bkt] < load[best]) best = bkt;
    }
    PLP_CHECK_LT(best, num_buckets);
    const int32_t u = sampled_users[idx];
    buckets[best].users.push_back(u);
    AppendUserToBucket(corpus, u, buckets[best]);
    load[best] += user_tokens[idx];
  }
  return buckets;
}

std::vector<Bucket> BuildSplitBuckets(const data::CorpusView& corpus,
                                      const std::vector<int32_t>& sampled,
                                      const PlpConfig& config, Rng& rng) {
  // ω > 1: cut each user's flattened stream into ω contiguous parts and
  // place the parts in ω distinct buckets. Bucket count is chosen so each
  // holds about λ parts; a round-robin with a random per-user offset keeps
  // a user's parts apart.
  const int64_t total_parts = static_cast<int64_t>(sampled.size()) *
                              config.split_factor;
  const int64_t num_buckets = std::max<int64_t>(
      config.split_factor,
      (total_parts + config.grouping_factor - 1) / config.grouping_factor);
  std::vector<Bucket> buckets(static_cast<size_t>(num_buckets));
  for (int32_t u : sampled) {
    const std::vector<int32_t> tokens = FlattenUser(corpus, u);
    const int64_t start = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(num_buckets)));
    const size_t part_len =
        (tokens.size() + config.split_factor - 1) /
        static_cast<size_t>(config.split_factor);
    for (int32_t p = 0; p < config.split_factor; ++p) {
      const size_t lo = static_cast<size_t>(p) * part_len;
      if (lo >= tokens.size()) break;
      const size_t hi = std::min(tokens.size(), lo + part_len);
      Bucket& bucket =
          buckets[static_cast<size_t>((start + p) % num_buckets)];
      if (bucket.users.empty() || bucket.users.back() != u) {
        bucket.users.push_back(u);
      }
      bucket.sentences.emplace_back(tokens.begin() + static_cast<int64_t>(lo),
                                    tokens.begin() + static_cast<int64_t>(hi));
    }
  }
  // Drop empty buckets.
  std::vector<Bucket> out;
  for (auto& b : buckets) {
    if (!b.sentences.empty()) out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

std::vector<Bucket> BuildBuckets(const data::CorpusView& corpus,
                                 const std::vector<int32_t>& sampled_users,
                                 const PlpConfig& config, Rng& rng) {
  for (int32_t u : sampled_users) {
    PLP_CHECK(u >= 0 && u < corpus.NumUsers());
  }
  if (sampled_users.empty()) return {};
  if (config.split_factor > 1) {
    return BuildSplitBuckets(corpus, sampled_users, config, rng);
  }
  if (config.grouping == GroupingKind::kEqualFrequency) {
    return BuildEqualFrequencyBuckets(corpus, sampled_users,
                                      config.grouping_factor);
  }
  return BuildRandomBuckets(corpus, sampled_users, config.grouping_factor,
                            rng);
}

int32_t RealizedSplitFactor(const std::vector<Bucket>& buckets) {
  std::unordered_map<int32_t, int32_t> bucket_count;
  for (const Bucket& b : buckets) {
    std::unordered_set<int32_t> distinct(b.users.begin(), b.users.end());
    for (int32_t u : distinct) ++bucket_count[u];
  }
  int32_t omega = 0;
  for (const auto& [u, c] : bucket_count) omega = std::max(omega, c);
  return omega;
}

}  // namespace plp::core
