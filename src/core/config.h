#ifndef PLP_CORE_CONFIG_H_
#define PLP_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "optim/optimizers.h"
#include "privacy/rdp_accountant.h"
#include "sgns/model.h"

namespace plp::core {

/// How sampled users are pooled into buckets (Section 4.1: дroupData).
enum class GroupingKind {
  /// Users are randomly permuted and chunked into buckets of λ (the
  /// paper's default — equal-frequency showed "no statistically
  /// significant benefit").
  kRandom,
  /// Greedy balancing so buckets hold approximately equal record counts,
  /// never splitting one user across buckets.
  kEqualFrequency,
};

/// How a bucket turns its data into a model update (lines 15–22).
enum class LocalUpdateMode {
  /// PLP: shuffled mini-batch SGD over the bucket's pairs (Algorithm 1's
  /// ModelUpdateFromBucket), optionally for several local epochs.
  kMultiBatchSgd,
  /// The DP-SGD baseline of [Abadi et al. / McMahan et al.]: one clipped
  /// gradient of the bucket's data at θ_t, scaled by η — no local
  /// optimization. This is what the paper's Section 5.2 compares against.
  kSingleGradient,
};

/// How each round's participating users are drawn (line 5).
enum class SamplingScheme : uint8_t {
  /// Each user independently with probability q (the paper's scheme; the
  /// RDP moments accountant and the pld_fft accountant both assume it).
  kPoisson = 1,
  /// Exactly B = round(q·N) distinct users drawn uniformly without
  /// replacement every round. Only the "mog" accountant models this
  /// sampling law tightly; the Poisson-only accountants reject it.
  kFixedBatch = 2,
};

/// "poisson" / "fixed_batch" → the enum; anything else is
/// kInvalidArgument naming the valid spellings.
Result<SamplingScheme> ParseSamplingScheme(const std::string& name);

/// The inverse of ParseSamplingScheme (flag echo, stage descriptions).
const char* SamplingSchemeName(SamplingScheme scheme);

/// Full configuration of Private Location Prediction (Algorithm 1).
/// Defaults are the paper's (Section 5.1): q=0.06, σ=2.5, C=0.5, λ=4,
/// δ=2·10⁻⁴, b=32, η=0.06, dim=50, win=2, neg=16.
struct PlpConfig {
  sgns::SgnsConfig sgns;  ///< skip-gram hyper-parameters

  // --- sampling & grouping ---
  double sampling_probability = 0.06;  ///< q = m/N (per-user)
  /// Poisson (q per user, the paper's default) or fixed_batch (exactly
  /// round(q·N) users per round). fixed_batch requires accountant "mog" —
  /// the Poisson-only accountants would account the wrong mechanism.
  SamplingScheme sampling_scheme = SamplingScheme::kPoisson;
  int32_t grouping_factor = 4;         ///< λ: users per bucket
  GroupingKind grouping = GroupingKind::kRandom;
  int32_t split_factor = 1;  ///< ω: buckets a user's data may reach (§4.2)

  // --- privacy mechanism ---
  double noise_scale = 2.5;    ///< σ (noise multiplier)
  double clip_norm = 0.5;      ///< C: overall l2 clip of a bucket delta
  double epsilon_budget = 2.0; ///< training stops when ε(δ) exceeds this
  double delta = 2e-4;         ///< fixed δ < 1/N

  /// RDP → (ε, δ) conversion used by the ledger (kClassic matches the
  /// moments-accountant literature; kImproved is tighter and allows ~40%
  /// more steps at the same budget).
  privacy::RdpConversion rdp_conversion = privacy::RdpConversion::kClassic;

  /// Accountant stage implementation: "rdp" (the moments-accountant
  /// ledger, the default), "pld_fft" (FFT-composed privacy-loss
  /// distribution per Koskela et al., arXiv:1906.03049 — tighter ε at the
  /// same (q, σ, δ), so more steps inside the same budget), or "mog"
  /// (group-level Mixture-of-Gaussians PLD per Ganesh, arXiv:2401.10294 —
  /// tight in the split factor ω and the only accountant that models
  /// fixed_batch sampling). Checkpoints record the accountant's own blob;
  /// resuming under a different accountant is rejected.
  std::string accountant = "rdp";

  /// Flexible budget allocation across learning stages (the paper's
  /// Section 7 future work): when > 0, σ_t decays linearly from
  /// noise_scale to noise_scale_final over noise_decay_steps, then stays
  /// at noise_scale_final. Early steps get more noise (cheap budget, the
  /// model is far from convergence anyway); late steps get cleaner
  /// updates. The ledger tracks each step's actual σ_t, so accounting
  /// stays exact. Requires 0 < noise_scale_final <= noise_scale.
  double noise_scale_final = 0.0;  ///< 0 disables the schedule
  int64_t noise_decay_steps = 0;

  /// Divide the noisy sum by the *expected* bucket count q·N/λ (the
  /// "fixed-denominator estimator" of Section 4.1) instead of the realized
  /// |H|. The fixed denominator keeps the averaging step data-independent.
  bool fixed_denominator = true;

  /// Ablation: calibrate noise per tensor (σ·C/√3 on each of the three
  /// tensors) instead of σ·C on the whole parameter vector.
  bool per_tensor_noise = false;

  // --- local (in-bucket) descent, Algorithm 1 lines 15–22 ---
  int32_t batch_size = 32;           ///< β
  double local_learning_rate = 0.06; ///< η

  /// Passes over a bucket's batches before the delta is extracted
  /// (Algorithm 1 makes one pass; multiple local epochs — the DP-FedAvg
  /// trick — strengthen each bucket's signal at no extra privacy cost,
  /// since the delta is clipped to C either way).
  int32_t local_epochs = 1;

  /// Multi-batch local SGD (PLP) or single-gradient (DP-SGD baseline).
  LocalUpdateMode local_update = LocalUpdateMode::kMultiBatchSgd;

  /// Paper-literal batching: a bucket's users are concatenated into a
  /// single token array before the symmetric window is applied ("Grouped
  /// data in each bucket is organized as a single array"). When false,
  /// windows never cross sentence boundaries.
  bool cross_user_windows = true;

  /// Cost model for the local copy Φ ← θ_t (line 16). The default sparse
  /// copy-on-write overlay is an optimization with identical outputs; the
  /// dense mode materializes a full model copy per bucket (the cost
  /// structure of the paper's TensorFlow implementation) and is what the
  /// Figure 9 runtime experiment measures.
  bool dense_local_copy = false;

  // --- server update ---
  std::string server_optimizer = "dp_adam";  ///< or "fixed_step"
  optim::AdamConfig adam;

  // --- loop control ---
  int64_t max_steps = 1'000'000;  ///< hard cap independent of the budget

  /// Worker threads for bucket updates (buckets are independent, lines
  /// 7–8). Every bucket trains on an Rng derived from the step seed and
  /// the bucket's content (BucketSeed), so for a given seed the trained
  /// model is bitwise-identical for *any* thread count, including the
  /// sequential num_threads = 1 path.
  int32_t num_threads = 1;

  /// Validates ranges. Reports *every* violation in one
  /// kInvalidArgument message ("; "-separated), so a misconfigured run
  /// surfaces all problems at once instead of one per attempt.
  Status Validate() const;
};

/// σ_t of the (optional) decaying noise schedule at the 1-based `step`;
/// constant noise_scale when the schedule is disabled. Endpoints: step 1
/// yields noise_scale exactly, every step >= noise_decay_steps yields
/// noise_scale_final exactly. The trainer and the ledger both use this, so
/// accounting stays exact; tests pin the endpoints.
double NoiseScaleAt(const PlpConfig& config, int64_t step);

/// The per-round effective noise multiplier the accountant must track:
/// noise stddev divided by the query's joint l2 sensitivity ω·C. With
/// per-tensor noise σ·ω·C/√3 on each tensor, the joint multiplier is σ/√3
/// (strictly less privacy per step than the default dense noise). Every
/// accountant stage receives exactly this value via the round record, so
/// accounting matches the aggregator's calibration bit-for-bit.
double EffectiveNoiseMultiplier(const PlpConfig& config, int64_t step);

/// The fixed-batch round size B = round(q·N), clamped to [1, N] — the
/// deterministic analogue of the Poisson sample's expectation.
int32_t FixedBatchSize(int32_t num_users, double q);

}  // namespace plp::core

#endif  // PLP_CORE_CONFIG_H_
