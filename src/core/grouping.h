#ifndef PLP_CORE_GROUPING_H_
#define PLP_CORE_GROUPING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "data/corpus.h"

namespace plp::core {

/// One training bucket (H element): the sentences of up to λ users.
struct Bucket {
  /// Users contributing data to this bucket (a user appears in at most ω
  /// buckets across the whole step).
  std::vector<int32_t> users;
  /// The location-token sentences assigned to this bucket.
  std::vector<std::vector<int32_t>> sentences;

  int64_t num_tokens() const;
};

/// Poisson-samples users: each of the corpus's users independently enters
/// the sample with probability q (Section 4.1 "User Sampling"; the sample
/// size equals m = qN only in expectation, which the moments accountant
/// requires).
std::vector<int32_t> PoissonSampleUsers(int32_t num_users, double q,
                                        Rng& rng);

/// Fixed-batch sampling: exactly `batch_size` distinct users drawn
/// uniformly without replacement (ascending ids out, like the Poisson
/// sampler). Consumes exactly `batch_size` draws from `rng` regardless of
/// which users are selected, so the trainer's RNG stream stays
/// data-independent — the same alignment contract the Poisson sampler
/// satisfies with its N Bernoulli draws.
std::vector<int32_t> FixedBatchSampleUsers(int32_t num_users,
                                           int32_t batch_size, Rng& rng);

/// дroupData(U_sample, λ) — pools the sampled users' data into buckets.
///
/// * GroupingKind::kRandom: random permutation chunked into groups of λ.
/// * GroupingKind::kEqualFrequency: greedy balancing of record counts
///   across ceil(n/λ) buckets without splitting a user.
///
/// With config.split_factor ω > 1, each user's token stream is cut into ω
/// contiguous parts which are assigned to ω *distinct* buckets (Section 4.2
/// Case 2; the trainer must then scale noise by ω).
std::vector<Bucket> BuildBuckets(const data::CorpusView& corpus,
                                 const std::vector<int32_t>& sampled_users,
                                 const PlpConfig& config, Rng& rng);

/// Largest number of distinct buckets any single user's data reaches —
/// the realized ω of Section 4.2. Used by tests and the trainer's noise
/// calibration assertions.
int32_t RealizedSplitFactor(const std::vector<Bucket>& buckets);

}  // namespace plp::core

#endif  // PLP_CORE_GROUPING_H_
