#include "core/plp_trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optim/optimizers.h"
#include "sgns/local_model.h"
#include "sgns/loss.h"
#include "sgns/pairs.h"
#include "sgns/sparse_delta.h"

namespace plp::core {
namespace {

/// Pairs for one bucket. Paper-literal mode concatenates the bucket's
/// sentences into a single array before applying the window (Section 4.1:
/// "Grouped data in each bucket is organized as a single array ... a
/// symmetric moving window is applied to create training examples, after
/// the array is read by the generateBatches() function").
std::vector<sgns::Pair> BucketPairs(const Bucket& bucket,
                                    const PlpConfig& config) {
  if (config.cross_user_windows) {
    std::vector<int32_t> flat;
    flat.reserve(static_cast<size_t>(bucket.num_tokens()));
    for (const auto& s : bucket.sentences) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return sgns::GeneratePairs(flat, config.sgns.window);
  }
  std::vector<sgns::Pair> pairs;
  for (const auto& s : bucket.sentences) {
    std::vector<sgns::Pair> p = sgns::GeneratePairs(s, config.sgns.window);
    pairs.insert(pairs.end(), p.begin(), p.end());
  }
  return pairs;
}

/// ModelUpdateFromBucket (Algorithm 1 lines 15–22): local SGD over the
/// bucket's batches starting from θ_t, then the clipped model delta.
template <typename Model>
sgns::BatchStats TrainLocally(Model& phi, const Bucket& bucket,
                              const PlpConfig& config, int32_t num_locations,
                              Rng& rng) {
  std::vector<sgns::Pair> pairs = BucketPairs(bucket, config);
  if (config.local_update == LocalUpdateMode::kSingleGradient) {
    // DP-SGD baseline: Φ = θ_t − η · ∇J(θ_t) over all of the bucket's
    // pairs at once — a single clipped gradient, no local optimization.
    return sgns::ApplySgdBatch(phi, pairs, config.sgns, num_locations,
                               config.local_learning_rate, rng);
  }
  sgns::BatchStats total;
  for (int32_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    const std::vector<std::vector<sgns::Pair>> batches =
        sgns::MakeBatches(pairs, config.batch_size, rng);
    for (const auto& batch : batches) {
      const sgns::BatchStats stats =
          sgns::ApplySgdBatch(phi, batch, config.sgns, num_locations,
                              config.local_learning_rate, rng);
      total.loss_sum += stats.loss_sum;
      total.num_pairs += stats.num_pairs;
    }
  }
  return total;
}

sgns::SparseDelta ModelUpdateFromBucket(const sgns::SgnsModel& theta,
                                        const Bucket& bucket,
                                        const PlpConfig& config,
                                        int32_t num_locations, Rng& rng,
                                        double* loss_out) {
  sgns::BatchStats stats;
  sgns::SparseDelta delta(config.sgns.embedding_dim);
  if (config.dense_local_copy) {
    // Paper-faithful cost model: full Φ ← θ_t copy and dense diff.
    sgns::SgnsModel phi = theta;
    stats = TrainLocally(phi, bucket, config, num_locations, rng);
    delta = sgns::DiffModels(phi, theta);
  } else {
    sgns::LocalModel phi(theta);
    stats = TrainLocally(phi, bucket, config, num_locations, rng);
    delta = phi.ExtractDelta();
  }
  if (loss_out != nullptr) {
    *loss_out = stats.mean_loss();
  }
  // Per-layer clipping (Section 4.1): each of the |θ| = 3 tensors is
  // clipped to C/√3 so the overall delta norm is at most C.
  delta.ClipPerTensor(config.clip_norm /
                      std::sqrt(static_cast<double>(sgns::kNumTensors)));
  return delta;
}

}  // namespace

Result<TrainResult> PlpTrainer::Train(const data::TrainingCorpus& corpus,
                                      Rng& rng,
                                      const StepCallback& callback) const {
  PLP_RETURN_IF_ERROR(config_.Validate());
  if (corpus.num_users() == 0 || corpus.num_locations <= 0) {
    return InvalidArgumentError("empty training corpus");
  }

  Stopwatch stopwatch;
  PLP_ASSIGN_OR_RETURN(sgns::SgnsModel model,
                       sgns::SgnsModel::Create(corpus.num_locations,
                                               config_.sgns, rng));
  privacy::PrivacyLedger ledger(config_.delta);
  std::unique_ptr<optim::ServerOptimizer> server =
      optim::MakeServerOptimizer(config_.server_optimizer, config_.adam);
  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(config_.num_threads));
  }

  // Fixed-denominator estimator: E[|H|] = q·N/λ (never below 1).
  const double expected_buckets =
      std::max(1.0, config_.sampling_probability *
                        static_cast<double>(corpus.num_users()) /
                        static_cast<double>(config_.grouping_factor));

  sgns::DenseUpdate update(model);
  TrainResult result;
  result.model = std::move(model);

  // σ_t for the (optional) decaying noise schedule; constant by default.
  const auto noise_scale_at = [this](int64_t step) {
    if (config_.noise_scale_final <= 0.0) return config_.noise_scale;
    if (step >= config_.noise_decay_steps) return config_.noise_scale_final;
    const double progress = static_cast<double>(step - 1) /
                            static_cast<double>(config_.noise_decay_steps);
    return config_.noise_scale +
           (config_.noise_scale_final - config_.noise_scale) * progress;
  };

  for (int64_t step = 1; step <= config_.max_steps; ++step) {
    const double sigma_t = noise_scale_at(step);
    // The ledger tracks the *effective* noise multiplier: noise stddev
    // divided by the query's joint l2 sensitivity ω·C. With per-tensor
    // noise σ·ω·C/√3 on each tensor, the joint multiplier is σ/√3
    // (strictly less privacy per step than the default dense noise).
    const double effective_multiplier =
        config_.per_tensor_noise
            ? sigma_t / std::sqrt(static_cast<double>(sgns::kNumTensors))
            : sigma_t;
    // Consume this step's budget first; if it overruns, return θ_{t-1} —
    // the model *before* this step's update (Algorithm 1 lines 11–13).
    PLP_RETURN_IF_ERROR(ledger.TrackStep(config_.sampling_probability,
                                         effective_multiplier));
    const double epsilon_after =
        ledger.CumulativeEpsilon(config_.rdp_conversion);
    if (epsilon_after > config_.epsilon_budget) {
      result.stop_reason = StopReason::kBudgetExhausted;
      break;
    }

    StepMetrics metrics;
    metrics.step = step;
    metrics.epsilon_spent = epsilon_after;
    result.epsilon_spent = epsilon_after;

    // Lines 5–6: Poisson user sample, then data grouping.
    const std::vector<int32_t> sampled = PoissonSampleUsers(
        corpus.num_users(), config_.sampling_probability, rng);
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, config_, rng);
    metrics.sampled_users = static_cast<int64_t>(sampled.size());
    metrics.num_buckets = static_cast<int64_t>(buckets.size());
    PLP_CHECK_LE(RealizedSplitFactor(buckets), config_.split_factor);

    // Lines 7–8: one clipped model delta per bucket, summed. Buckets are
    // independent; with num_threads > 1 they are fanned out with per-bucket
    // seeds so the result does not depend on scheduling.
    update.Zero();
    double loss_sum = 0.0;
    if (pool != nullptr && buckets.size() > 1) {
      const uint64_t step_seed = rng.NextU64();
      std::vector<std::unique_ptr<sgns::SparseDelta>> deltas(buckets.size());
      std::vector<double> losses(buckets.size(), 0.0);
      pool->ParallelFor(buckets.size(), [&](size_t i) {
        Rng bucket_rng(step_seed ^
                       (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(i + 1)));
        deltas[i] = std::make_unique<sgns::SparseDelta>(ModelUpdateFromBucket(
            result.model, buckets[i], config_, corpus.num_locations,
            bucket_rng, &losses[i]));
      });
      for (size_t i = 0; i < buckets.size(); ++i) {
        deltas[i]->AccumulateInto(update, 1.0);
        loss_sum += losses[i];
      }
    } else {
      for (const Bucket& bucket : buckets) {
        double bucket_loss = 0.0;
        const sgns::SparseDelta delta = ModelUpdateFromBucket(
            result.model, bucket, config_, corpus.num_locations, rng,
            &bucket_loss);
        delta.AccumulateInto(update, 1.0);
        loss_sum += bucket_loss;
      }
    }
    metrics.mean_local_loss =
        buckets.empty() ? 0.0
                        : loss_sum / static_cast<double>(buckets.size());
    metrics.signal_norm = update.Norm();

    // Line 9: Gaussian noise calibrated to the sum's sensitivity ω·C.
    const double sensitivity =
        static_cast<double>(config_.split_factor) * config_.clip_norm;
    if (config_.per_tensor_noise) {
      const double per_tensor_std =
          sigma_t * sensitivity /
          std::sqrt(static_cast<double>(sgns::kNumTensors));
      for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
        update.AddGaussianNoiseToTensor(static_cast<sgns::Tensor>(ti), rng,
                                        per_tensor_std);
      }
    } else {
      update.AddGaussianNoise(rng, sigma_t * sensitivity);
    }
    const double denominator =
        config_.fixed_denominator
            ? expected_buckets
            : std::max<double>(1.0, static_cast<double>(buckets.size()));
    update.Scale(1.0 / denominator);
    metrics.noisy_update_norm = update.Norm();

    // Line 10: model update.
    server->ApplyUpdate(update, result.model);
    result.steps_executed = step;
    result.history.push_back(metrics);

    if (callback && !callback(metrics, result.model)) {
      result.stop_reason = StopReason::kCallback;
      break;
    }
    if (step == config_.max_steps) result.stop_reason = StopReason::kMaxSteps;
  }

  result.wall_seconds = stopwatch.ElapsedSeconds();
  return result;
}

DpSgdTrainer::DpSgdTrainer(const PlpConfig& config)
    : trainer_([&config] {
        PlpConfig c = config;
        c.grouping_factor = 1;
        c.split_factor = 1;
        c.grouping = GroupingKind::kRandom;
        c.local_update = LocalUpdateMode::kSingleGradient;
        return c;
      }()) {}

}  // namespace plp::core
