#include "core/plp_trainer.h"

#include "pipeline/engine.h"
#include "pipeline/standard_stages.h"

namespace plp::core {

Result<TrainResult> PlpTrainer::Train(
    const data::CorpusView& corpus, Rng& rng, const StepCallback& callback,
    const ckpt::CheckpointOptions& checkpoint) const {
  PLP_RETURN_IF_ERROR(config_.Validate());
  // Algorithm 1 as a stage configuration of the shared engine: Poisson
  // sampler, λ-grouper, per-bucket local SGD, per-tensor clip, Gaussian
  // sum query, the configured accountant, the configured server optimizer.
  pipeline::TrainingEngine engine(pipeline::MakePrivateEngineConfig(config_),
                                  pipeline::MakePrivateStages(config_));
  return engine.Train(corpus, rng, callback, checkpoint);
}

DpSgdTrainer::DpSgdTrainer(const PlpConfig& config)
    : trainer_([&config] {
        PlpConfig c = config;
        c.grouping_factor = 1;
        c.split_factor = 1;
        c.grouping = GroupingKind::kRandom;
        c.local_update = LocalUpdateMode::kSingleGradient;
        return c;
      }()) {}

}  // namespace plp::core
