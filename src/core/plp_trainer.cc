#include "core/plp_trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/bucket_update.h"
#include "optim/optimizers.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp::core {
namespace {

/// Snapshots the full mutable training state after completed step `step`.
/// The ledger/optimizer states embed as opaque blobs: each component
/// serializes itself, the checkpoint format stays ignorant of their layout.
ckpt::TrainerSnapshot MakePrivateSnapshot(
    int64_t step, const Rng& rng, const privacy::PrivacyLedger& ledger,
    const optim::ServerOptimizer& server, const std::string& optimizer_name,
    const sgns::SgnsModel& model) {
  ckpt::TrainerSnapshot snapshot;
  snapshot.kind = ckpt::TrainerKind::kPrivate;
  snapshot.step = step;
  snapshot.rng = rng.SaveState();
  ByteWriter ledger_writer;
  ledger.SaveState(ledger_writer);
  snapshot.ledger_blob = ledger_writer.Take();
  snapshot.optimizer_name = optimizer_name;
  ByteWriter optimizer_writer;
  server.SaveState(optimizer_writer);
  snapshot.optimizer_blob = optimizer_writer.Take();
  snapshot.model = model;
  return snapshot;
}

}  // namespace

Result<TrainResult> PlpTrainer::Train(
    const data::TrainingCorpus& corpus, Rng& rng, const StepCallback& callback,
    const ckpt::CheckpointOptions& checkpoint) const {
  PLP_RETURN_IF_ERROR(config_.Validate());
  if (corpus.num_users() == 0 || corpus.num_locations <= 0) {
    return InvalidArgumentError("empty training corpus");
  }
  std::optional<ckpt::CheckpointManager> manager;
  if (checkpoint.enabled()) {
    if (checkpoint.every_steps <= 0) {
      return InvalidArgumentError("checkpoint every_steps must be > 0");
    }
    manager.emplace(checkpoint.dir, checkpoint.keep_last);
    PLP_RETURN_IF_ERROR(manager->Init());
  }

  Stopwatch stopwatch;
  PLP_ASSIGN_OR_RETURN(sgns::SgnsModel model,
                       sgns::SgnsModel::Create(corpus.num_locations,
                                               config_.sgns, rng));
  privacy::PrivacyLedger ledger(config_.delta);
  std::unique_ptr<optim::ServerOptimizer> server =
      optim::MakeServerOptimizer(config_.server_optimizer, config_.adam);

  // Resume overlays the freshly-initialized state: the snapshot's model,
  // ledger, optimizer moments and RNG position replace the fresh ones, and
  // the loop continues at the step after the snapshot. Every cross-field
  // consistency violation is rejected here, before any state is mutated.
  int64_t start_step = 0;
  if (manager && checkpoint.resume) {
    auto loaded = manager->LoadLatest();
    if (loaded.ok()) {
      ckpt::TrainerSnapshot& snapshot = *loaded;
      if (snapshot.kind != ckpt::TrainerKind::kPrivate) {
        return InvalidArgumentError(
            "checkpoint was written by a different trainer kind");
      }
      if (snapshot.model.num_locations() != corpus.num_locations ||
          snapshot.model.dim() != config_.sgns.embedding_dim) {
        return InvalidArgumentError(
            "checkpoint model shape disagrees with corpus/config");
      }
      if (snapshot.optimizer_name != config_.server_optimizer) {
        return InvalidArgumentError(
            "checkpoint optimizer disagrees with config");
      }
      ByteReader ledger_reader(snapshot.ledger_blob);
      PLP_ASSIGN_OR_RETURN(privacy::PrivacyLedger restored_ledger,
                           privacy::PrivacyLedger::Restore(ledger_reader));
      if (!ledger_reader.AtEnd()) {
        return InvalidArgumentError("checkpoint: trailing ledger bytes");
      }
      if (restored_ledger.delta() != config_.delta) {
        return InvalidArgumentError("checkpoint δ disagrees with config");
      }
      // Ledger-first invariant: a snapshot at step k carries exactly k
      // tracked steps — the ledger always covers the model's spends.
      if (restored_ledger.total_steps() != snapshot.step) {
        return InvalidArgumentError(
            "checkpoint ledger steps disagree with step counter");
      }
      ByteReader optimizer_reader(snapshot.optimizer_blob);
      PLP_RETURN_IF_ERROR(server->LoadState(optimizer_reader, snapshot.model));
      if (!optimizer_reader.AtEnd()) {
        return InvalidArgumentError("checkpoint: trailing optimizer bytes");
      }
      ledger = std::move(restored_ledger);
      model = std::move(snapshot.model);
      rng.RestoreState(snapshot.rng);
      start_step = snapshot.step;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(config_.num_threads));
  }

  // Fixed-denominator estimator: E[|H|] = q·N/λ (never below 1).
  const double expected_buckets =
      std::max(1.0, config_.sampling_probability *
                        static_cast<double>(corpus.num_users()) /
                        static_cast<double>(config_.grouping_factor));

  sgns::DenseUpdate update(model);
  TrainResult result;
  result.model = std::move(model);
  result.steps_executed = start_step;
  if (start_step > 0) {
    result.epsilon_spent = ledger.CumulativeEpsilon(config_.rdp_conversion);
  }

  // Steady-state buffers reused across steps: one TrainScratch per pool
  // worker (workers index them via ThreadPool::CurrentWorkerIndex(), the
  // sequential path uses slot 0) and one SparseDelta slot per bucket
  // (grown lazily; Clear() keeps row-map capacity).
  const size_t num_workers = pool != nullptr ? pool->num_threads() : 1;
  std::vector<sgns::TrainScratch> scratches;
  scratches.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    scratches.emplace_back(config_.sgns.embedding_dim);
  }
  std::vector<sgns::SparseDelta> deltas;
  std::vector<const sgns::SparseDelta*> delta_ptrs;
  std::vector<double> losses;

  for (int64_t step = start_step + 1; step <= config_.max_steps; ++step) {
    const double sigma_t = NoiseScaleAt(config_, step);
    // The ledger tracks the *effective* noise multiplier: noise stddev
    // divided by the query's joint l2 sensitivity ω·C. With per-tensor
    // noise σ·ω·C/√3 on each tensor, the joint multiplier is σ/√3
    // (strictly less privacy per step than the default dense noise).
    const double effective_multiplier =
        config_.per_tensor_noise
            ? sigma_t / std::sqrt(static_cast<double>(sgns::kNumTensors))
            : sigma_t;
    // Consume this step's budget first; if it overruns, return θ_{t-1} —
    // the model *before* this step's update (Algorithm 1 lines 11–13).
    PLP_RETURN_IF_ERROR(ledger.TrackStep(config_.sampling_probability,
                                         effective_multiplier));
    const double epsilon_after =
        ledger.CumulativeEpsilon(config_.rdp_conversion);
    if (epsilon_after > config_.epsilon_budget) {
      result.stop_reason = StopReason::kBudgetExhausted;
      break;
    }

    StepMetrics metrics;
    metrics.step = step;
    metrics.epsilon_spent = epsilon_after;
    result.epsilon_spent = epsilon_after;

    Stopwatch phase;

    // Lines 5–6: Poisson user sample, then data grouping.
    const std::vector<int32_t> sampled = PoissonSampleUsers(
        corpus.num_users(), config_.sampling_probability, rng);
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, config_, rng);
    metrics.sampled_users = static_cast<int64_t>(sampled.size());
    metrics.num_buckets = static_cast<int64_t>(buckets.size());
    PLP_CHECK_LE(RealizedSplitFactor(buckets), config_.split_factor);
    result.phase_seconds.sampling_grouping += phase.ElapsedSeconds();

    // Lines 7–8: one clipped model delta per bucket. Buckets are
    // independent; every bucket's local training runs on an Rng derived
    // from the step seed and the bucket's content (BucketSeed), so the
    // result is bitwise-identical for any num_threads — the sequential
    // path is the same computation without the fan-out. Both seeds are
    // drawn even when no bucket exists so the streams stay aligned across
    // runs that sample differently.
    phase.Reset();
    update.Zero(pool.get());
    const uint64_t step_seed = rng.NextU64();
    const uint64_t noise_seed = rng.NextU64();
    while (deltas.size() < buckets.size()) {
      deltas.emplace_back(config_.sgns.embedding_dim);
    }
    losses.assign(buckets.size(), 0.0);
    if (pool != nullptr && buckets.size() > 1) {
      pool->ParallelFor(buckets.size(), [&](size_t i) {
        const int worker = ThreadPool::CurrentWorkerIndex();
        sgns::TrainScratch* scratch =
            worker >= 0 ? &scratches[static_cast<size_t>(worker)] : nullptr;
        Rng bucket_rng(BucketSeed(step_seed, buckets[i]));
        deltas[i] = ComputeBucketUpdate(result.model, buckets[i], config_,
                                        corpus.num_locations, bucket_rng,
                                        &losses[i], scratch);
      });
    } else {
      for (size_t i = 0; i < buckets.size(); ++i) {
        Rng bucket_rng(BucketSeed(step_seed, buckets[i]));
        deltas[i] = ComputeBucketUpdate(result.model, buckets[i], config_,
                                        corpus.num_locations, bucket_rng,
                                        &losses[i], &scratches[0]);
      }
    }
    result.phase_seconds.local_sgd += phase.ElapsedSeconds();

    // Sharded deterministic reduction of the bucket deltas (the Σ of the
    // Gaussian sum query) — bitwise equal to accumulating them serially
    // in bucket order.
    phase.Reset();
    delta_ptrs.clear();
    double loss_sum = 0.0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      delta_ptrs.push_back(&deltas[i]);
      loss_sum += losses[i];
    }
    sgns::AccumulateDeltas(delta_ptrs, 1.0, update, pool.get());
    metrics.mean_local_loss =
        buckets.empty() ? 0.0
                        : loss_sum / static_cast<double>(buckets.size());
    metrics.signal_norm = update.Norm(pool.get());
    result.phase_seconds.reduction += phase.ElapsedSeconds();

    // Line 9: Gaussian noise calibrated to the sum's sensitivity ω·C,
    // drawn from counter-based per-block streams keyed on noise_seed —
    // identical output for any thread count.
    phase.Reset();
    const double sensitivity =
        static_cast<double>(config_.split_factor) * config_.clip_norm;
    if (config_.per_tensor_noise) {
      const double per_tensor_std =
          sigma_t * sensitivity /
          std::sqrt(static_cast<double>(sgns::kNumTensors));
      for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
        update.AddGaussianNoiseToTensor(static_cast<sgns::Tensor>(ti),
                                        noise_seed, per_tensor_std,
                                        pool.get());
      }
    } else {
      update.AddGaussianNoise(noise_seed, sigma_t * sensitivity, pool.get());
    }
    const double denominator =
        config_.fixed_denominator
            ? expected_buckets
            : std::max<double>(1.0, static_cast<double>(buckets.size()));
    update.Scale(1.0 / denominator, pool.get());
    metrics.noisy_update_norm = update.Norm(pool.get());
    result.phase_seconds.noise += phase.ElapsedSeconds();
    PLP_FAULT_POINT("trainer.after_noise");

    // Line 10: model update.
    phase.Reset();
    server->ApplyUpdate(update, result.model);
    result.phase_seconds.server_apply += phase.ElapsedSeconds();
    result.steps_executed = step;
    result.history.push_back(metrics);

    // Observe before committing: a crash between the callback and the
    // checkpoint replays the step (re-observing the identical metrics),
    // whereas the reverse order could persist a step no observer ever saw.
    const bool continue_training =
        !callback || callback(metrics, result.model);

    if (manager && step % checkpoint.every_steps == 0) {
      PLP_FAULT_POINT("trainer.before_checkpoint");
      PLP_RETURN_IF_ERROR(manager->Save(MakePrivateSnapshot(
          step, rng, ledger, *server, config_.server_optimizer,
          result.model)));
    }

    if (!continue_training) {
      result.stop_reason = StopReason::kCallback;
      break;
    }
    if (step == config_.max_steps) result.stop_reason = StopReason::kMaxSteps;
  }

  result.wall_seconds = stopwatch.ElapsedSeconds();
  return result;
}

DpSgdTrainer::DpSgdTrainer(const PlpConfig& config)
    : trainer_([&config] {
        PlpConfig c = config;
        c.grouping_factor = 1;
        c.split_factor = 1;
        c.grouping = GroupingKind::kRandom;
        c.local_update = LocalUpdateMode::kSingleGradient;
        return c;
      }()) {}

}  // namespace plp::core
