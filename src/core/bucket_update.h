#ifndef PLP_CORE_BUCKET_UPDATE_H_
#define PLP_CORE_BUCKET_UPDATE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/grouping.h"
#include "sgns/model.h"
#include "sgns/negative_sampler.h"
#include "sgns/pairs.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp::core {

/// Pairs for one bucket. Paper-literal mode concatenates the bucket's
/// sentences into a single array before applying the window (Section 4.1:
/// "Grouped data in each bucket is organized as a single array ... a
/// symmetric moving window is applied to create training examples, after
/// the array is read by the generateBatches() function").
std::vector<sgns::Pair> BucketPairs(const Bucket& bucket,
                                    const PlpConfig& config);

/// BucketPairs into caller-owned buffers: `out` is cleared and pre-reserved
/// from the exact window pair count, `flat_scratch` is reused for the
/// paper-literal sentence concatenation. Same output as BucketPairs, no
/// growth reallocation.
void BucketPairsInto(const Bucket& bucket, const PlpConfig& config,
                     std::vector<int32_t>& flat_scratch,
                     std::vector<sgns::Pair>& out);

/// Lines 15–20 only: local SGD over the bucket's batches starting from
/// θ_t, returning the *unclipped* model delta. The pipeline's
/// `LocalUpdater` stage produces this raw delta and hands it to the
/// `DeltaClipper` stage, which applies line 21 and reports whether the
/// bound engaged (clip_fraction). `loss_out` may be null; `scratch` is an
/// optional per-worker workspace.
sgns::SparseDelta ComputeRawBucketDelta(const sgns::SgnsModel& theta,
                                        const Bucket& bucket,
                                        const PlpConfig& config,
                                        int32_t num_locations, Rng& rng,
                                        double* loss_out = nullptr,
                                        sgns::TrainScratch* scratch = nullptr);

/// ComputeRawBucketDelta into a caller-owned delta (Clear()ed first).
/// With `scratch` given, the overlay model and the delta's row stores
/// both reuse capacity grown on earlier buckets, so steady-state bucket
/// fan-out performs no allocation. Results are bitwise identical to the
/// by-value overload.
/// `negative_table` selects unigram negative sampling for the local SGD
/// (null → uniform, byte-identical to the pre-option behavior).
void ComputeRawBucketDeltaInto(const sgns::SgnsModel& theta,
                               const Bucket& bucket, const PlpConfig& config,
                               int32_t num_locations, Rng& rng,
                               double* loss_out, sgns::TrainScratch* scratch,
                               sgns::SparseDelta& delta,
                               const sgns::UnigramTable* negative_table =
                                   nullptr);

/// ModelUpdateFromBucket (Algorithm 1 lines 15–22): local SGD over the
/// bucket's batches starting from θ_t, then the clipped model delta
/// (per-tensor C/√3, so the overall norm is at most C). Deterministic
/// given `rng`'s state. `loss_out` may be null. `scratch` is an optional
/// per-worker workspace (pair/candidate/gradient buffers) that eliminates
/// steady-state allocation without changing any result.
/// ComputeRawBucketDelta followed by the per-tensor clip.
sgns::SparseDelta ComputeBucketUpdate(const sgns::SgnsModel& theta,
                                      const Bucket& bucket,
                                      const PlpConfig& config,
                                      int32_t num_locations, Rng& rng,
                                      double* loss_out = nullptr,
                                      sgns::TrainScratch* scratch = nullptr);

/// The RNG seed for one bucket's local training, derived from the step
/// seed and the bucket's *content* (user ids and data shape), never its
/// position in the bucket list. Content keying gives two properties the
/// privacy and determinism arguments both need:
///
/// * Schedule independence: the seed is the same no matter which thread
///   processes the bucket or how many workers exist, so training is
///   bitwise-identical across num_threads (the sequential path uses the
///   same derivation).
/// * Neighbor coupling: on neighboring datasets (one user removed), every
///   bucket that does not contain that user keeps its exact seed and hence
///   its exact delta, so the pre-noise sum moves only through the removed
///   user's ≤ ω buckets — the coupling the ω·C sensitivity bound requires.
///   Index-keyed seeds would re-randomize every bucket after the removed
///   one and break that argument.
uint64_t BucketSeed(uint64_t step_seed, const Bucket& bucket);

}  // namespace plp::core

#endif  // PLP_CORE_BUCKET_UPDATE_H_
