#include "core/config.h"

namespace plp::core {

Status PlpConfig::Validate() const {
  if (sgns.embedding_dim <= 0) {
    return InvalidArgumentError("embedding_dim must be > 0");
  }
  if (sgns.window <= 0) return InvalidArgumentError("window must be > 0");
  if (sgns.negatives <= 0) {
    return InvalidArgumentError("negatives must be > 0");
  }
  if (sampling_probability <= 0.0 || sampling_probability > 1.0) {
    return InvalidArgumentError("sampling_probability must be in (0, 1]");
  }
  if (grouping_factor < 1) {
    return InvalidArgumentError("grouping_factor must be >= 1");
  }
  if (split_factor < 1) {
    return InvalidArgumentError("split_factor must be >= 1");
  }
  if (noise_scale < 0.0) {
    return InvalidArgumentError("noise_scale must be >= 0");
  }
  if (clip_norm <= 0.0) return InvalidArgumentError("clip_norm must be > 0");
  if (epsilon_budget <= 0.0) {
    return InvalidArgumentError("epsilon_budget must be > 0");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  if (batch_size <= 0) return InvalidArgumentError("batch_size must be > 0");
  if (local_learning_rate <= 0.0) {
    return InvalidArgumentError("local_learning_rate must be > 0");
  }
  if (local_epochs < 1) {
    return InvalidArgumentError("local_epochs must be >= 1");
  }
  if (server_optimizer != "dp_adam" && server_optimizer != "fixed_step") {
    return InvalidArgumentError("unknown server_optimizer: " +
                                server_optimizer);
  }
  if (max_steps <= 0) return InvalidArgumentError("max_steps must be > 0");
  if (num_threads < 1) {
    return InvalidArgumentError("num_threads must be >= 1");
  }
  if (noise_scale_final < 0.0) {
    return InvalidArgumentError("noise_scale_final must be >= 0");
  }
  if (noise_scale_final > 0.0) {
    if (noise_scale_final > noise_scale) {
      return InvalidArgumentError(
          "noise_scale_final must not exceed noise_scale");
    }
    if (noise_decay_steps <= 0) {
      return InvalidArgumentError(
          "noise_decay_steps must be > 0 when a schedule is set");
    }
  }
  return Status::Ok();
}

double NoiseScaleAt(const PlpConfig& config, int64_t step) {
  if (config.noise_scale_final <= 0.0) return config.noise_scale;
  if (step >= config.noise_decay_steps) return config.noise_scale_final;
  const double progress = static_cast<double>(step - 1) /
                          static_cast<double>(config.noise_decay_steps);
  return config.noise_scale +
         (config.noise_scale_final - config.noise_scale) * progress;
}

}  // namespace plp::core
