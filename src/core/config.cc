#include "core/config.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "privacy/mog_accountant.h"

namespace plp::core {
namespace {

/// Joins every violation into one kInvalidArgument status so a
/// misconfigured run reports all problems at once.
Status CollectViolations(const std::vector<std::string>& violations) {
  if (violations.empty()) return Status::Ok();
  std::string message = "invalid config: ";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) message += "; ";
    message += violations[i];
  }
  return InvalidArgumentError(std::move(message));
}

}  // namespace

Result<SamplingScheme> ParseSamplingScheme(const std::string& name) {
  if (name == "poisson") return SamplingScheme::kPoisson;
  if (name == "fixed_batch") return SamplingScheme::kFixedBatch;
  return InvalidArgumentError("unknown sampling scheme: " + name +
                              " (valid: poisson, fixed_batch)");
}

const char* SamplingSchemeName(SamplingScheme scheme) {
  return scheme == SamplingScheme::kFixedBatch ? "fixed_batch" : "poisson";
}

Status PlpConfig::Validate() const {
  std::vector<std::string> violations;
  const auto require = [&](bool ok, const char* message) {
    if (!ok) violations.emplace_back(message);
  };
  require(sgns.embedding_dim > 0, "embedding_dim must be > 0");
  require(sgns.window > 0, "window must be > 0");
  require(sgns.negatives > 0, "negatives must be > 0");
  require(sgns.unigram_power >= 0.0, "unigram_power must be >= 0");
  require(sampling_probability > 0.0 && sampling_probability <= 1.0,
          "sampling_probability must be in (0, 1]");
  require(grouping_factor >= 1, "grouping_factor must be >= 1");
  require(split_factor >= 1, "split_factor must be >= 1");
  require(noise_scale >= 0.0, "noise_scale must be >= 0");
  require(clip_norm > 0.0, "clip_norm must be > 0");
  require(epsilon_budget > 0.0, "epsilon_budget must be > 0");
  require(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  require(batch_size > 0, "batch_size must be > 0");
  require(local_learning_rate > 0.0, "local_learning_rate must be > 0");
  require(local_epochs >= 1, "local_epochs must be >= 1");
  if (server_optimizer != "dp_adam" && server_optimizer != "fixed_step") {
    violations.push_back("unknown server_optimizer: " + server_optimizer);
  }
  if (accountant != "rdp" && accountant != "pld_fft" &&
      accountant != "mog") {
    violations.push_back("unknown accountant: " + accountant);
  } else if (sampling_scheme == SamplingScheme::kFixedBatch &&
             accountant != "mog") {
    // The rdp ledger and the pld_fft accountant both hard-code the
    // Poisson-subsampled Gaussian's dominating pair; feeding them
    // fixed-batch rounds would certify the wrong mechanism.
    violations.push_back(
        "accountant \"" + accountant +
        "\" models Poisson sampling only; valid (scheme, accountant) pairs "
        "are poisson x {rdp, pld_fft, mog} and fixed_batch x {mog}");
  }
  if (accountant == "mog" &&
      split_factor > privacy::kMogMaxSplitFactor) {
    // MogAccountant::AddRounds rejects larger ω; catching it here fails
    // the run before corpus loading instead of at the first TrackRound.
    violations.push_back(
        "accountant \"mog\" supports split_factor <= " +
        std::to_string(privacy::kMogMaxSplitFactor) +
        " (kMogMaxSplitFactor); got " + std::to_string(split_factor));
  }
  require(max_steps > 0, "max_steps must be > 0");
  require(num_threads >= 1, "num_threads must be >= 1");
  require(noise_scale_final >= 0.0, "noise_scale_final must be >= 0");
  if (noise_scale_final > 0.0) {
    require(noise_scale_final <= noise_scale,
            "noise_scale_final must not exceed noise_scale");
    require(noise_decay_steps > 0,
            "noise_decay_steps must be > 0 when a schedule is set");
  }
  return CollectViolations(violations);
}

double NoiseScaleAt(const PlpConfig& config, int64_t step) {
  if (config.noise_scale_final <= 0.0) return config.noise_scale;
  if (step >= config.noise_decay_steps) return config.noise_scale_final;
  const double progress = static_cast<double>(step - 1) /
                          static_cast<double>(config.noise_decay_steps);
  return config.noise_scale +
         (config.noise_scale_final - config.noise_scale) * progress;
}

double EffectiveNoiseMultiplier(const PlpConfig& config, int64_t step) {
  const double sigma_t = NoiseScaleAt(config, step);
  return config.per_tensor_noise
             ? sigma_t / std::sqrt(static_cast<double>(sgns::kNumTensors))
             : sigma_t;
}

int32_t FixedBatchSize(int32_t num_users, double q) {
  const int64_t rounded =
      std::llround(q * static_cast<double>(num_users));
  return static_cast<int32_t>(
      std::clamp<int64_t>(rounded, 1, num_users));
}

}  // namespace plp::core
