#include "core/nonprivate_trainer.h"

#include <utility>

#include "core/plp_trainer.h"
#include "pipeline/engine.h"
#include "pipeline/standard_stages.h"

namespace plp::core {

Status NonPrivateConfig::Validate() const {
  std::string message;
  const auto require = [&](bool ok, const char* violation) {
    if (ok) return;
    message += message.empty() ? "invalid config: " : "; ";
    message += violation;
  };
  require(sgns.embedding_dim > 0, "embedding_dim must be > 0");
  require(sgns.window > 0, "window must be > 0");
  require(sgns.negatives > 0, "negatives must be > 0");
  require(batch_size > 0, "batch_size must be > 0");
  require(epochs > 0, "epochs must be > 0");
  require(subsample_threshold >= 0.0 && subsample_threshold < 1.0,
          "subsample_threshold must be in [0, 1)");
  if (message.empty()) return Status::Ok();
  return InvalidArgumentError(std::move(message));
}

Result<NonPrivateResult> NonPrivateTrainer::Train(
    const data::CorpusView& corpus, Rng& rng,
    const EpochCallback& callback,
    const ckpt::CheckpointOptions& checkpoint) const {
  PLP_RETURN_IF_ERROR(config_.Validate());
  // The baseline as a degenerate stage configuration of the shared engine:
  // a whole-round epoch updater driving a lazy sparse Adam, with sampling,
  // clipping, noise and accounting all null. One engine step = one epoch.
  pipeline::TrainingEngine engine(
      pipeline::MakeNonPrivateEngineConfig(config_),
      pipeline::MakeNonPrivateStages(config_));
  StepCallback step_callback;
  if (callback) {
    step_callback = [&callback](const StepMetrics& step,
                                const sgns::SgnsModel& model) {
      EpochMetrics metrics;
      metrics.epoch = step.step;
      metrics.mean_loss = step.mean_local_loss;
      return callback(metrics, model);
    };
  }
  PLP_ASSIGN_OR_RETURN(TrainResult train,
                       engine.Train(corpus, rng, step_callback, checkpoint));
  NonPrivateResult result;
  result.model = std::move(train.model);
  result.history.reserve(train.history.size());
  for (const StepMetrics& step : train.history) {
    EpochMetrics metrics;
    metrics.epoch = step.step;
    metrics.mean_loss = step.mean_local_loss;
    result.history.push_back(metrics);
  }
  result.wall_seconds = train.wall_seconds;
  return result;
}

}  // namespace plp::core
