#include "core/nonprivate_trainer.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "sgns/loss.h"
#include "sgns/pairs.h"
#include "sgns/sparse_delta.h"

namespace plp::core {

Status NonPrivateConfig::Validate() const {
  if (sgns.embedding_dim <= 0) {
    return InvalidArgumentError("embedding_dim must be > 0");
  }
  if (sgns.window <= 0) return InvalidArgumentError("window must be > 0");
  if (sgns.negatives <= 0) {
    return InvalidArgumentError("negatives must be > 0");
  }
  if (batch_size <= 0) return InvalidArgumentError("batch_size must be > 0");
  if (epochs <= 0) return InvalidArgumentError("epochs must be > 0");
  if (subsample_threshold < 0.0 || subsample_threshold >= 1.0) {
    return InvalidArgumentError("subsample_threshold must be in [0, 1)");
  }
  return Status::Ok();
}

namespace {
constexpr char kOptimizerName[] = "sparse_adam";
}  // namespace

Result<NonPrivateResult> NonPrivateTrainer::Train(
    const data::TrainingCorpus& corpus, Rng& rng,
    const EpochCallback& callback,
    const ckpt::CheckpointOptions& checkpoint) const {
  PLP_RETURN_IF_ERROR(config_.Validate());
  if (corpus.num_users() == 0 || corpus.num_locations <= 0) {
    return InvalidArgumentError("empty training corpus");
  }
  std::optional<ckpt::CheckpointManager> manager;
  if (checkpoint.enabled()) {
    if (checkpoint.every_steps <= 0) {
      return InvalidArgumentError("checkpoint every_steps must be > 0");
    }
    manager.emplace(checkpoint.dir, checkpoint.keep_last);
    PLP_RETURN_IF_ERROR(manager->Init());
  }

  Stopwatch stopwatch;
  PLP_ASSIGN_OR_RETURN(sgns::SgnsModel model,
                       sgns::SgnsModel::Create(corpus.num_locations,
                                               config_.sgns, rng));
  optim::SparseAdam adam(model, config_.adam);

  // Per-token keep probabilities for word2vec-style subsampling of
  // frequent locations (non-private only; see the config comment).
  std::vector<double> keep_probability;
  if (config_.subsample_threshold > 0.0) {
    std::vector<int64_t> counts(
        static_cast<size_t>(corpus.num_locations), 0);
    int64_t total = 0;
    for (const auto& sentences : corpus.user_sentences) {
      for (const auto& s : sentences) {
        for (int32_t token : s) {
          ++counts[static_cast<size_t>(token)];
          ++total;
        }
      }
    }
    keep_probability.resize(counts.size(), 1.0);
    for (size_t l = 0; l < counts.size(); ++l) {
      if (counts[l] == 0) continue;
      const double f = static_cast<double>(counts[l]) /
                       static_cast<double>(total);
      const double ratio = config_.subsample_threshold / f;
      keep_probability[l] = std::min(1.0, std::sqrt(ratio) + ratio);
    }
  }
  auto build_pairs = [&](Rng& pair_rng) {
    std::vector<sgns::Pair> pairs;
    std::vector<int32_t> filtered;
    for (const auto& sentences : corpus.user_sentences) {
      for (const auto& s : sentences) {
        const std::vector<int32_t>* sentence = &s;
        if (!keep_probability.empty()) {
          filtered.clear();
          for (int32_t token : s) {
            if (pair_rng.Bernoulli(
                    keep_probability[static_cast<size_t>(token)])) {
              filtered.push_back(token);
            }
          }
          sentence = &filtered;
        }
        std::vector<sgns::Pair> p =
            sgns::GeneratePairs(*sentence, config_.sgns.window);
        pairs.insert(pairs.end(), p.begin(), p.end());
      }
    }
    return pairs;
  };

  // Without subsampling the pair set is static: build it once (consuming
  // no randomness) and let every epoch shuffle a pristine-order copy. With
  // subsampling, every epoch builds a fresh pristine-order subsample.
  // Either way an epoch depends only on the RNG position at its start —
  // never on the permutation earlier epochs left behind — which is what
  // lets a resumed run replay the remaining epochs bit-identically.
  std::vector<sgns::Pair> pristine_pairs;
  if (keep_probability.empty()) {
    pristine_pairs = build_pairs(rng);
    if (pristine_pairs.empty()) {
      return InvalidArgumentError(
          "corpus produced no training pairs (sentences shorter than 2?)");
    }
  }

  int64_t start_epoch = 0;
  if (manager && checkpoint.resume) {
    auto loaded = manager->LoadLatest();
    if (loaded.ok()) {
      ckpt::TrainerSnapshot& snapshot = *loaded;
      if (snapshot.kind != ckpt::TrainerKind::kNonPrivate) {
        return InvalidArgumentError(
            "checkpoint was written by a different trainer kind");
      }
      if (snapshot.model.num_locations() != corpus.num_locations ||
          snapshot.model.dim() != config_.sgns.embedding_dim) {
        return InvalidArgumentError(
            "checkpoint model shape disagrees with corpus/config");
      }
      if (snapshot.optimizer_name != kOptimizerName ||
          !snapshot.ledger_blob.empty()) {
        return InvalidArgumentError(
            "checkpoint payload disagrees with the non-private trainer");
      }
      ByteReader optimizer_reader(snapshot.optimizer_blob);
      PLP_RETURN_IF_ERROR(adam.LoadState(optimizer_reader, snapshot.model));
      if (!optimizer_reader.AtEnd()) {
        return InvalidArgumentError("checkpoint: trailing optimizer bytes");
      }
      model = std::move(snapshot.model);
      rng.RestoreState(snapshot.rng);
      start_epoch = snapshot.step;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  NonPrivateResult result;
  result.model = std::move(model);
  std::vector<sgns::Pair> all_pairs;
  for (int64_t epoch = start_epoch + 1; epoch <= config_.epochs; ++epoch) {
    all_pairs = keep_probability.empty() ? pristine_pairs : build_pairs(rng);
    rng.Shuffle(all_pairs);
    double loss_sum = 0.0;
    int64_t pairs = 0;
    for (size_t start = 0; start < all_pairs.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          all_pairs.size(), start + static_cast<size_t>(config_.batch_size));
      const std::span<const sgns::Pair> batch(all_pairs.data() + start,
                                              end - start);
      sgns::SparseDelta gradient(config_.sgns.embedding_dim);
      const sgns::BatchStats stats = sgns::AccumulateBatchGradient(
          result.model, batch, config_.sgns, corpus.num_locations, rng,
          gradient);
      adam.ApplyGradient(gradient, 1.0 / static_cast<double>(batch.size()),
                         result.model);
      loss_sum += stats.loss_sum;
      pairs += stats.num_pairs;
    }
    EpochMetrics metrics;
    metrics.epoch = epoch;
    metrics.mean_loss =
        pairs == 0 ? 0.0 : loss_sum / static_cast<double>(pairs);
    result.history.push_back(metrics);
    // Observe before committing (see PlpTrainer::Train): a crash between
    // the two replays the epoch rather than hiding it from the observer.
    const bool continue_training =
        !callback || callback(metrics, result.model);
    if (manager && epoch % checkpoint.every_steps == 0) {
      PLP_FAULT_POINT("trainer.before_checkpoint");
      ckpt::TrainerSnapshot snapshot;
      snapshot.kind = ckpt::TrainerKind::kNonPrivate;
      snapshot.step = epoch;
      snapshot.rng = rng.SaveState();
      snapshot.optimizer_name = kOptimizerName;
      ByteWriter optimizer_writer;
      adam.SaveState(optimizer_writer);
      snapshot.optimizer_blob = optimizer_writer.Take();
      snapshot.model = result.model;
      PLP_RETURN_IF_ERROR(manager->Save(snapshot));
    }
    if (!continue_training) break;
  }
  result.wall_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace plp::core
