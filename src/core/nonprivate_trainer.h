#ifndef PLP_CORE_NONPRIVATE_TRAINER_H_
#define PLP_CORE_NONPRIVATE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/corpus.h"
#include "optim/optimizers.h"
#include "sgns/model.h"

namespace plp::core {

/// Configuration for the non-private skip-gram baseline (Sections 3.2 and
/// 5.2: plain Adam over the sampled-softmax loss, no clipping, no noise).
struct NonPrivateConfig {
  sgns::SgnsConfig sgns;
  optim::AdamConfig adam;
  int32_t batch_size = 32;
  int64_t epochs = 200;

  /// word2vec frequent-token subsampling: a token with corpus frequency f
  /// is kept with probability min(1, √(t/f) + t/f) each epoch (t = this
  /// threshold; 0 disables). Available only to the non-private trainer —
  /// estimating the location frequency distribution from user data would
  /// itself leak privacy, which is why PLP's sampled softmax sticks to
  /// uniform candidates (Section 3.2).
  double subsample_threshold = 0.0;

  Status Validate() const;
};

/// Per-epoch diagnostics.
struct EpochMetrics {
  int64_t epoch = 0;       ///< 1-based
  double mean_loss = 0.0;  ///< mean per-pair training loss this epoch
};

/// Output of non-private training.
struct NonPrivateResult {
  sgns::SgnsModel model;
  std::vector<EpochMetrics> history;
  double wall_seconds = 0.0;
};

/// Observer invoked after each epoch; return false to stop early.
using EpochCallback =
    std::function<bool(const EpochMetrics&, const sgns::SgnsModel&)>;

/// Standard (non-private) skip-gram training: all users' sentences are
/// pooled, windows yield (target, context) pairs, shuffled batches feed a
/// sparse Adam. This is baseline (i) of Section 5.2 and the model whose
/// hyper-parameters Figure 5 tunes.
class NonPrivateTrainer {
 public:
  explicit NonPrivateTrainer(const NonPrivateConfig& config)
      : config_(config) {}

  const NonPrivateConfig& config() const { return config_; }

  /// With `checkpoint.dir` set, a durable snapshot is committed every
  /// `checkpoint.every_steps` completed epochs; `checkpoint.resume`
  /// continues from the newest valid one. Each epoch shuffles the pair
  /// set from pristine corpus order, so an epoch is a pure function of the
  /// RNG position at its start and a resumed run finishes bit-identically
  /// to an uninterrupted one.
  Result<NonPrivateResult> Train(
      const data::CorpusView& corpus, Rng& rng,
      const EpochCallback& callback = nullptr,
      const ckpt::CheckpointOptions& checkpoint = {}) const;

 private:
  NonPrivateConfig config_;
};

}  // namespace plp::core

#endif  // PLP_CORE_NONPRIVATE_TRAINER_H_
