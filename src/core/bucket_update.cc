#include "core/bucket_update.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "sgns/local_model.h"
#include "sgns/loss.h"

namespace plp::core {
namespace {

/// Local SGD over the bucket's batches starting from θ_t (lines 15–22).
/// The pair list lives in `scratch` when one is given; batches are spans
/// into it after an in-place Fisher–Yates shuffle (same n−1 UniformInt
/// draws the old copy-and-shuffle MakeBatches consumed).
template <typename Model>
sgns::BatchStats TrainLocally(Model& phi, const Bucket& bucket,
                              const PlpConfig& config, int32_t num_locations,
                              Rng& rng, sgns::TrainScratch* scratch,
                              const sgns::UnigramTable* negative_table) {
  std::vector<sgns::Pair> local_pairs;
  std::vector<int32_t> local_flat;
  std::vector<sgns::Pair>& pairs =
      scratch != nullptr ? scratch->pairs : local_pairs;
  std::vector<int32_t>& flat =
      scratch != nullptr ? scratch->flat : local_flat;
  BucketPairsInto(bucket, config, flat, pairs);
  if (config.local_update == LocalUpdateMode::kSingleGradient) {
    // DP-SGD baseline: Φ = θ_t − η · ∇J(θ_t) over all of the bucket's
    // pairs at once — a single clipped gradient, no local optimization.
    return sgns::ApplySgdBatch(phi, pairs, config.sgns, num_locations,
                               config.local_learning_rate, rng, scratch,
                               negative_table);
  }
  sgns::BatchStats total;
  const size_t batch_size = static_cast<size_t>(config.batch_size);
  for (int32_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    rng.Shuffle(pairs);
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      const size_t len = std::min(batch_size, pairs.size() - start);
      const std::span<const sgns::Pair> batch(pairs.data() + start, len);
      const sgns::BatchStats stats =
          sgns::ApplySgdBatch(phi, batch, config.sgns, num_locations,
                              config.local_learning_rate, rng, scratch,
                              negative_table);
      total.loss_sum += stats.loss_sum;
      total.num_pairs += stats.num_pairs;
    }
  }
  return total;
}

}  // namespace

std::vector<sgns::Pair> BucketPairs(const Bucket& bucket,
                                    const PlpConfig& config) {
  std::vector<sgns::Pair> pairs;
  std::vector<int32_t> flat;
  BucketPairsInto(bucket, config, flat, pairs);
  return pairs;
}

void BucketPairsInto(const Bucket& bucket, const PlpConfig& config,
                     std::vector<int32_t>& flat_scratch,
                     std::vector<sgns::Pair>& out) {
  out.clear();
  if (config.cross_user_windows) {
    flat_scratch.clear();
    flat_scratch.reserve(static_cast<size_t>(bucket.num_tokens()));
    for (const auto& s : bucket.sentences) {
      flat_scratch.insert(flat_scratch.end(), s.begin(), s.end());
    }
    out.reserve(sgns::PairCount(flat_scratch.size(), config.sgns.window));
    sgns::AppendPairs(flat_scratch, config.sgns.window, out);
    return;
  }
  size_t total = 0;
  for (const auto& s : bucket.sentences) {
    total += sgns::PairCount(s.size(), config.sgns.window);
  }
  out.reserve(total);
  for (const auto& s : bucket.sentences) {
    sgns::AppendPairs(s, config.sgns.window, out);
  }
}

sgns::SparseDelta ComputeRawBucketDelta(const sgns::SgnsModel& theta,
                                        const Bucket& bucket,
                                        const PlpConfig& config,
                                        int32_t num_locations, Rng& rng,
                                        double* loss_out,
                                        sgns::TrainScratch* scratch) {
  sgns::SparseDelta delta(config.sgns.embedding_dim);
  ComputeRawBucketDeltaInto(theta, bucket, config, num_locations, rng,
                            loss_out, scratch, delta);
  return delta;
}

void ComputeRawBucketDeltaInto(const sgns::SgnsModel& theta,
                               const Bucket& bucket, const PlpConfig& config,
                               int32_t num_locations, Rng& rng,
                               double* loss_out, sgns::TrainScratch* scratch,
                               sgns::SparseDelta& delta,
                               const sgns::UnigramTable* negative_table) {
  sgns::BatchStats stats;
  if (config.dense_local_copy) {
    // Paper-faithful cost model: full Φ ← θ_t copy and dense diff.
    sgns::SgnsModel phi = theta;
    stats = TrainLocally(phi, bucket, config, num_locations, rng, scratch,
                         negative_table);
    delta = sgns::DiffModels(phi, theta);
  } else if (scratch != nullptr) {
    // The overlay reuses the scratch's row stores across buckets: Reset()
    // makes it behave exactly like a fresh LocalModel(theta) without the
    // per-bucket grow-from-scratch table and arena allocations.
    if (scratch->overlay.has_value()) {
      scratch->overlay->Reset(theta);
    } else {
      scratch->overlay.emplace(theta);
    }
    sgns::LocalModel& phi = *scratch->overlay;
    stats = TrainLocally(phi, bucket, config, num_locations, rng, scratch,
                         negative_table);
    phi.ExtractDeltaInto(delta);
  } else {
    sgns::LocalModel phi(theta);
    stats = TrainLocally(phi, bucket, config, num_locations, rng, scratch,
                         negative_table);
    phi.ExtractDeltaInto(delta);
  }
  if (loss_out != nullptr) {
    *loss_out = stats.mean_loss();
  }
}

sgns::SparseDelta ComputeBucketUpdate(const sgns::SgnsModel& theta,
                                      const Bucket& bucket,
                                      const PlpConfig& config,
                                      int32_t num_locations, Rng& rng,
                                      double* loss_out,
                                      sgns::TrainScratch* scratch) {
  sgns::SparseDelta delta = ComputeRawBucketDelta(
      theta, bucket, config, num_locations, rng, loss_out, scratch);
  // Per-layer clipping (Section 4.1): each of the |θ| = 3 tensors is
  // clipped to C/√3 so the overall delta norm is at most C.
  delta.ClipPerTensor(config.clip_norm /
                      std::sqrt(static_cast<double>(sgns::kNumTensors)));
  return delta;
}

uint64_t BucketSeed(uint64_t step_seed, const Bucket& bucket) {
  // FNV-1a over the bucket's content identity. Collisions between distinct
  // buckets of one step are harmless (their data still differs), and the
  // Rng constructor's splitmix64 scrambling decorrelates nearby seeds.
  uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (int32_t u : bucket.users) mix(static_cast<uint64_t>(u) + 1);
  mix(static_cast<uint64_t>(bucket.sentences.size()));
  mix(static_cast<uint64_t>(bucket.num_tokens()));
  return step_seed ^ h;
}

}  // namespace plp::core
