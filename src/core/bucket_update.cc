#include "core/bucket_update.h"

#include <cmath>

#include "sgns/local_model.h"
#include "sgns/loss.h"

namespace plp::core {
namespace {

/// Local SGD over the bucket's batches starting from θ_t (lines 15–22).
template <typename Model>
sgns::BatchStats TrainLocally(Model& phi, const Bucket& bucket,
                              const PlpConfig& config, int32_t num_locations,
                              Rng& rng) {
  std::vector<sgns::Pair> pairs = BucketPairs(bucket, config);
  if (config.local_update == LocalUpdateMode::kSingleGradient) {
    // DP-SGD baseline: Φ = θ_t − η · ∇J(θ_t) over all of the bucket's
    // pairs at once — a single clipped gradient, no local optimization.
    return sgns::ApplySgdBatch(phi, pairs, config.sgns, num_locations,
                               config.local_learning_rate, rng);
  }
  sgns::BatchStats total;
  for (int32_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    const std::vector<std::vector<sgns::Pair>> batches =
        sgns::MakeBatches(pairs, config.batch_size, rng);
    for (const auto& batch : batches) {
      const sgns::BatchStats stats =
          sgns::ApplySgdBatch(phi, batch, config.sgns, num_locations,
                              config.local_learning_rate, rng);
      total.loss_sum += stats.loss_sum;
      total.num_pairs += stats.num_pairs;
    }
  }
  return total;
}

}  // namespace

std::vector<sgns::Pair> BucketPairs(const Bucket& bucket,
                                    const PlpConfig& config) {
  if (config.cross_user_windows) {
    std::vector<int32_t> flat;
    flat.reserve(static_cast<size_t>(bucket.num_tokens()));
    for (const auto& s : bucket.sentences) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    return sgns::GeneratePairs(flat, config.sgns.window);
  }
  std::vector<sgns::Pair> pairs;
  for (const auto& s : bucket.sentences) {
    std::vector<sgns::Pair> p = sgns::GeneratePairs(s, config.sgns.window);
    pairs.insert(pairs.end(), p.begin(), p.end());
  }
  return pairs;
}

sgns::SparseDelta ComputeBucketUpdate(const sgns::SgnsModel& theta,
                                      const Bucket& bucket,
                                      const PlpConfig& config,
                                      int32_t num_locations, Rng& rng,
                                      double* loss_out) {
  sgns::BatchStats stats;
  sgns::SparseDelta delta(config.sgns.embedding_dim);
  if (config.dense_local_copy) {
    // Paper-faithful cost model: full Φ ← θ_t copy and dense diff.
    sgns::SgnsModel phi = theta;
    stats = TrainLocally(phi, bucket, config, num_locations, rng);
    delta = sgns::DiffModels(phi, theta);
  } else {
    sgns::LocalModel phi(theta);
    stats = TrainLocally(phi, bucket, config, num_locations, rng);
    delta = phi.ExtractDelta();
  }
  if (loss_out != nullptr) {
    *loss_out = stats.mean_loss();
  }
  // Per-layer clipping (Section 4.1): each of the |θ| = 3 tensors is
  // clipped to C/√3 so the overall delta norm is at most C.
  delta.ClipPerTensor(config.clip_norm /
                      std::sqrt(static_cast<double>(sgns::kNumTensors)));
  return delta;
}

uint64_t BucketSeed(uint64_t step_seed, const Bucket& bucket) {
  // FNV-1a over the bucket's content identity. Collisions between distinct
  // buckets of one step are harmless (their data still differs), and the
  // Rng constructor's splitmix64 scrambling decorrelates nearby seeds.
  uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (int32_t u : bucket.users) mix(static_cast<uint64_t>(u) + 1);
  mix(static_cast<uint64_t>(bucket.sentences.size()));
  mix(static_cast<uint64_t>(bucket.num_tokens()));
  return step_seed ^ h;
}

}  // namespace plp::core
