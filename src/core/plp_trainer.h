#ifndef PLP_CORE_PLP_TRAINER_H_
#define PLP_CORE_PLP_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "core/grouping.h"
#include "data/corpus.h"
#include "privacy/ledger.h"
#include "sgns/model.h"

namespace plp::core {

/// Per-step diagnostics surfaced to callbacks and stored in the history.
struct StepMetrics {
  int64_t step = 0;                ///< 1-based step index
  int64_t sampled_users = 0;       ///< |U_sample| this step
  int64_t num_buckets = 0;         ///< |H| this step
  double mean_local_loss = 0.0;    ///< mean in-bucket training loss
  double epsilon_spent = 0.0;      ///< cumulative ε after this step
  double signal_norm = 0.0;        ///< ‖Σ clipped deltas‖ before noise
  double noisy_update_norm = 0.0;  ///< ‖ĝ_t‖ actually applied
  /// Fraction of this step's bucket deltas whose clip bound engaged (line
  /// 21 actually scaled them). Persistently ≈ 1 means C is throttling the
  /// signal; ≈ 0 means C is slack and the noise is larger than necessary.
  double clip_fraction = 0.0;
  /// Largest number of distinct buckets any single user's data reached
  /// this step (Section 4.2's realized ω). The engine asserts it never
  /// exceeds the configured ω — the noise calibration σ·ω·C and every
  /// accountant's group-level analysis are unsound past that bound.
  int32_t realized_split_factor = 0;
};

/// Why training stopped.
enum class StopReason {
  kBudgetExhausted,  ///< ε(δ) reached the budget (Algorithm 1 line 12)
  kMaxSteps,         ///< hit config.max_steps
  kCallback,         ///< a callback returned false
};

/// Wall-clock seconds per pipeline stage, summed over all executed steps.
/// The training-throughput bench reports this breakdown so regressions in
/// one stage don't hide inside the aggregate steps/sec.
struct TrainPhaseSeconds {
  double sampling_grouping = 0.0;  ///< Poisson sample + bucket grouping
  double local_sgd = 0.0;          ///< per-bucket local training (lines 7–8)
  double reduction = 0.0;          ///< Σ bucket deltas into the dense sum
  double noise = 0.0;              ///< Gaussian noise + averaging (line 9)
  double server_apply = 0.0;       ///< server optimizer (line 10)
};

/// Output of a training run.
struct TrainResult {
  sgns::SgnsModel model;
  int64_t steps_executed = 0;
  double epsilon_spent = 0.0;     ///< at the configured δ
  StopReason stop_reason = StopReason::kMaxSteps;
  double wall_seconds = 0.0;
  TrainPhaseSeconds phase_seconds;
  std::vector<StepMetrics> history;
};

/// Observer invoked after every training step with the step metrics and the
/// current model; return false to stop training (e.g. benches evaluating a
/// validation metric). The model reference is only valid during the call.
using StepCallback =
    std::function<bool(const StepMetrics&, const sgns::SgnsModel&)>;

/// Private Location Prediction — Algorithm 1 with user-level (ε, δ)-DP.
///
/// Each step: Poisson-sample users with probability q, pool them into
/// buckets of λ, locally train a copy of the model on each bucket, clip
/// each bucket's model delta to C (per-tensor C/√3), sum, add Gaussian
/// noise N(0, σ²·ω²·C²·I), average, and apply via the server optimizer. A
/// privacy ledger tracks every step; training returns the last model whose
/// cumulative ε is within budget.
class PlpTrainer {
 public:
  /// Validates `config` eagerly; invalid configs surface at Train().
  explicit PlpTrainer(const PlpConfig& config) : config_(config) {}

  const PlpConfig& config() const { return config_; }

  /// Runs Algorithm 1 over `corpus`. Deterministic given `rng`'s state.
  /// `callback` may be null.
  ///
  /// When `checkpoint.dir` is set, a durable snapshot is committed every
  /// `checkpoint.every_steps` completed steps (ledger-first: the ledger has
  /// already tracked every step whose noised update the snapshot's model
  /// contains, so no restored run can under-account). With
  /// `checkpoint.resume`, training continues from the newest valid
  /// snapshot — and because every random draw of a step is a pure function
  /// of the saved RNG position, a run killed at any instant and resumed
  /// replays the *identical* noise and reaches a bit-identical final model
  /// at any thread count; replayed steps are the same mechanism draws, not
  /// a second privacy spend.
  Result<TrainResult> Train(
      const data::CorpusView& corpus, Rng& rng,
      const StepCallback& callback = nullptr,
      const ckpt::CheckpointOptions& checkpoint = {}) const;

 private:
  PlpConfig config_;
};

/// The state-of-the-art baseline the paper compares against (Section 5.2):
/// user-level DP-SGD [Abadi et al. / McMahan et al.] adapted to
/// user-partitioned data — exactly Algorithm 1 with no data grouping
/// (λ = 1), i.e. one clipped update per sampled user.
class DpSgdTrainer {
 public:
  /// Copies `config` with grouping disabled (λ = 1, ω = 1, random).
  explicit DpSgdTrainer(const PlpConfig& config);

  const PlpConfig& config() const { return trainer_.config(); }

  Result<TrainResult> Train(
      const data::CorpusView& corpus, Rng& rng,
      const StepCallback& callback = nullptr,
      const ckpt::CheckpointOptions& checkpoint = {}) const {
    return trainer_.Train(corpus, rng, callback, checkpoint);
  }

 private:
  PlpTrainer trainer_;
};

}  // namespace plp::core

#endif  // PLP_CORE_PLP_TRAINER_H_
